(** The client-facing signature of the Threads synchronization interface.

    Every backend — the Firefly simulation ({!Api.Sim}), the cooperative
    uniprocessor version ({!Uniproc}), and the real-parallelism OCaml 5
    implementation ([threads_multicore]) — provides this signature, so
    client programs (examples, workloads, tests) are backend-generic:
    exactly the insulation the paper says the specification gives its
    clients. *)

(** The exception of the alerting facility. *)
exception Alerted

module type SYNC = sig
  type mutex
  type condition
  type semaphore
  type thread

  (** {1 Object creation} *)

  val mutex : unit -> mutex
  val condition : unit -> condition
  val semaphore : unit -> semaphore

  (** {1 Mutual exclusion} *)

  val acquire : mutex -> unit
  val release : mutex -> unit

  (** [with_lock m f] is Modula-2+'s [LOCK m DO f() END]: Release runs on
      both normal and exceptional exit. *)
  val with_lock : mutex -> (unit -> 'a) -> 'a

  (** {1 Condition variables} *)

  val wait : mutex -> condition -> unit
  val signal : condition -> unit
  val broadcast : condition -> unit

  (** {1 Semaphores} *)

  val p : semaphore -> unit
  val v : semaphore -> unit

  (** {1 Alerting} *)

  val alert : thread -> unit
  val test_alert : unit -> bool

  (** @raise Alerted instead of returning when alerted. *)
  val alert_wait : mutex -> condition -> unit

  (** @raise Alerted instead of returning when alerted. *)
  val alert_p : semaphore -> unit

  (** {1 Threads} *)

  val self : unit -> thread
  val fork : (unit -> unit) -> thread
  val join : thread -> unit
  val yield : unit -> unit
end

(** A backend packaged with its runner. *)
module type BACKEND = sig
  module Make (_ : sig end) : SYNC
end
