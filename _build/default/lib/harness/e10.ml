(** E10 — semaphores are required for interrupt routines.

    Paper: "an interrupt routine cannot protect shared data with a mutex —
    because the interrupt might have pre-empted a thread in a critical
    section protected by that mutex — and using Wait and Signal ...
    requires use of an associated mutex.  Instead, a thread waits for an
    interrupt routine action by calling P(sem), and the interrupt routine
    unblocks it by calling V(sem)."

    A simulated device raises interrupts that V a semaphore; a driver
    thread collects them with P.  Across thousands of seeds no V is lost
    (the semaphore's single bit covers the race).  Then the anti-pattern:
    an interrupt routine that calls Acquire on a mutex dies attempting to
    block whenever the mutex is held — the machine enforces the paper's
    prohibition. *)

module Table = Threads_util.Table
module Ops = Firefly.Machine.Ops

let seeds = 2000
let interrupts_per_run = 5

(* One device interrupt = one interrupt-context thread performing V.
   [prefer] schedules interrupt threads with absolute priority, modelling
   an interrupt that preempts the only CPU; since our Nub does not mask
   interrupts while holding the spin-lock, that mode can livelock — the
   very reason the real Nub raises the interrupt priority level around
   spin-lock sections.  The default mode models the interrupt running on
   another processor. *)
let pv_run ?(prefer = false) ~seed () =
  let strategy =
    if prefer then Firefly.Sched.prefer_interrupts (Firefly.Sched.random seed)
    else Firefly.Sched.random seed
  in
  let report =
    Firefly.Interleave.run ~seed ~max_steps:200_000 ~strategy
      (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let pkg = Taos_threads.Pkg.create () in
               let sem = Taos_threads.Semaphore.create pkg in
               (* The semaphore starts unavailable: nothing to consume
                  until the device raises an interrupt. *)
               Taos_threads.Semaphore.p sem;
               (* One operation in flight at a time (a binary semaphore is
                  a completion handshake, not a counter). *)
               let command_pending = ref false in
               let driver () =
                 for _ = 1 to interrupts_per_run do
                   command_pending := true;
                   Ops.tick 1;
                   Taos_threads.Semaphore.p sem
                 done
               in
               let d = Ops.spawn driver in
               for i = 1 to interrupts_per_run do
                 (* Device: complete each started operation with an
                    interrupt at an arbitrary moment; the handler runs in
                    interrupt context (cannot block) and only calls V. *)
                 while not !command_pending do
                   Ops.yield ()
                 done;
                 command_pending := false;
                 Ops.tick (1 + (i * 3));
                 ignore
                   (Firefly.Machine.spawn_root machine ~interrupt:true
                      (fun () -> Taos_threads.Semaphore.v sem))
               done;
               Ops.join d)))
  in
  report

let anti_pattern () =
  (* An interrupt routine that tries to Acquire a mutex held by the thread
     it preempted: the machine faults it the moment it must block. *)
  let failures = ref 0 in
  let runs = 200 in
  for seed = 0 to runs - 1 do
    let report =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (Firefly.Machine.spawn_root machine (fun () ->
                 let pkg = Taos_threads.Pkg.create () in
                 let m = Taos_threads.Mutex.create pkg in
                 let worker () =
                   Taos_threads.Mutex.with_lock m (fun () -> Ops.tick 50)
                 in
                 let w = Ops.spawn worker in
                 (* interrupt-context thread doing the forbidden thing *)
                 ignore
                   (Firefly.Machine.spawn_root machine ~interrupt:true
                      (fun () ->
                        Taos_threads.Mutex.with_lock m (fun () -> ())));
                 Ops.join w)))
    in
    let faulted =
      List.exists
        (fun (tid, _) -> Firefly.Machine.is_interrupt report.Firefly.Interleave.machine tid)
        (Firefly.Machine.failures report.Firefly.Interleave.machine)
    in
    if faulted then incr failures
  done;
  (!failures, runs)

let run () =
  let sweep ~prefer =
    let lost = ref 0 and livelocked = ref 0 and faulted = ref 0 in
    for seed = 0 to seeds - 1 do
      let report = pv_run ~prefer ~seed () in
      match report.Firefly.Interleave.verdict with
      | Firefly.Interleave.Completed ->
        if Firefly.Machine.failures report.Firefly.Interleave.machine <> []
        then incr faulted
      | Firefly.Interleave.Deadlock _ -> incr lost
      | Firefly.Interleave.Step_limit -> incr livelocked
    done;
    (!lost, !livelocked, !faulted)
  in
  let lost, livelocked, faulted = sweep ~prefer:false in
  let p_lost, p_livelocked, p_faulted = sweep ~prefer:true in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E10: device interrupts via V(sem), %d runs x %d interrupts"
           seeds interrupts_per_run)
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "interrupt scheduling"; "lost V"; "livelocked"; "faulted" ]
  in
  Table.add_row t
    [ "other processor (random)"; Table.cell_int lost;
      Table.cell_int livelocked; Table.cell_int faulted ];
  Table.add_row t
    [ "preempts the CPU (no IPL masking)"; Table.cell_int p_lost;
      Table.cell_int p_livelocked; Table.cell_int p_faulted ];
  Table.print t;
  print_endline
    "The livelocks in the preempting mode are the interrupt spinning on\n\
     the Nub spin-lock held by the thread it preempted - the reason the\n\
     real Nub raises the interrupt priority level around its spin-lock\n\
     sections.  No V is ever lost in either mode.";
  let faulted, runs = anti_pattern () in
  let t2 =
    Table.create ~title:"E10b: mutex inside an interrupt routine (forbidden)"
      ~aligns:[ Table.Left; Table.Right ]
      [ "metric"; "value" ]
  in
  Table.add_row t2 [ "runs"; Table.cell_int runs ];
  Table.add_row t2
    [ "interrupt routine faulted trying to block"; Table.cell_int faulted ];
  Table.print t2;
  print_endline
    "Shape check: P/V never loses a device interrupt; an interrupt routine\n\
     that reaches for a mutex faults whenever the mutex is contended —\n\
     semaphores are required, as the paper says."

let experiment =
  {
    Exp.id = "E10";
    title = "Interrupt synchronization needs semaphores";
    claim =
      "Semaphores are required for synchronizing with interrupt routines: \
       an interrupt routine cannot protect shared data with a mutex \
       (Informal Description).";
    run;
  }
