(** E6 — ablation of the user-space fast path.

    Paper: "The purpose of having code in the user space is to optimize
    most cases where the synchronization action will not cause the thread
    to block, nor cause another thread to resume ... The user code avoids
    the overhead of calling the Nub in these cases."

    Same workload with the fast path compiled out (every operation enters
    the Nub, i.e. takes the spin-lock): instructions per operation and Nub
    entries per operation, across contention levels. *)

module Table = Threads_util.Table

let ops_per_thread = 300
let processors = 5

let measure ~threads ~fast_path =
  let report =
    Taos_threads.Api.run_timed ~processors ~fast_path ~seed:(threads * 31)
      (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let module Ops = Firefly.Machine.Ops in
        let m = S.mutex () in
        let worker () =
          for _ = 1 to ops_per_thread do
            S.acquire m;
            Ops.tick 10;
            S.release m;
            Ops.tick 40
          done
        in
        let ts = List.init threads (fun _ -> S.fork worker) in
        List.iter S.join ts)
  in
  let machine = report.Firefly.Timed.machine in
  let total_ops = float_of_int (threads * ops_per_thread) in
  let instr =
    float_of_int (Firefly.Machine.total_instructions machine) /. total_ops
  in
  let nub =
    float_of_int
      (Firefly.Machine.counter machine "nub.acquire"
      + Firefly.Machine.counter machine "nub.release")
    /. total_ops
  in
  let cycles = float_of_int report.Firefly.Timed.sim_cycles in
  (instr, nub, cycles)

let run () =
  let t =
    Table.create ~title:"E6: fast path vs always-Nub (lock/unlock pair)"
      [ "threads"; "variant"; "instr/op"; "nub entries/op"; "sim cycles";
        "slowdown" ]
  in
  List.iter
    (fun threads ->
      let i_fast, n_fast, c_fast = measure ~threads ~fast_path:true in
      let i_slow, n_slow, c_slow = measure ~threads ~fast_path:false in
      Table.add_row t
        [
          Table.cell_int threads; "fast path";
          Table.cell_float i_fast; Table.cell_float n_fast;
          Table.cell_float ~decimals:0 c_fast; "1.00x";
        ];
      Table.add_row t
        [
          ""; "always Nub";
          Table.cell_float i_slow; Table.cell_float n_slow;
          Table.cell_float ~decimals:0 c_slow;
          Table.cell_ratio (c_slow /. c_fast);
        ];
      if threads <> 16 then Table.add_rule t)
    [ 1; 4; 16 ];
  Table.print t;
  print_endline
    "Shape check: without the in-line user code every operation pays the\n\
     spin-lock round trip; the uncontended case suffers most — exactly\n\
     the case the paper optimized."

let experiment =
  {
    Exp.id = "E6";
    title = "User-space fast path ablation";
    claim =
      "The user code avoids the overhead of calling the Nub when the \
       action will not block or unblock anyone (Implementation).";
    run;
  }
