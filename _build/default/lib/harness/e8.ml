(** E8 — Mesa-style hints vs Hoare-style guarantees.

    Paper: "Return from Wait is only a hint that must be confirmed ...  By
    contrast, with Hoare's condition variables threads are guaranteed that
    the predicate is true on return from Wait.  Our looser specification
    reduces the obligations of the signalling thread and leads to a more
    efficient implementation on our multiprocessor."

    Producer/consumer over a bounded buffer under both semantics: Mesa
    waiters re-evaluate their predicate in a loop (we count re-checks and
    spurious wakeups); Hoare signallers hand over the monitor and suspend
    (we count the forced context switches).  The trade the paper describes
    is visible directly. *)

module Table = Threads_util.Table
module Ops = Firefly.Machine.Ops

let items = 60
let consumers = 3

type metrics = {
  rechecks : int;  (** predicate evaluations beyond the first, per wait *)
  spurious : int;  (** wakeups that found the predicate still false *)
  switches : int;  (** signaller-side forced context switches (Hoare) *)
  steps : int;
}

let mesa ~seed =
  let rechecks = ref 0 and spurious = ref 0 in
  let report =
    Taos_threads.Api.run ~seed (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        let nonempty = S.condition () in
        let buf = ref 0 in
        let consumer () =
          for _ = 1 to items / consumers do
            S.with_lock m (fun () ->
                let waited = ref false in
                while !buf = 0 do
                  if !waited then incr spurious;
                  S.wait m nonempty;
                  waited := true;
                  incr rechecks
                done;
                decr buf)
          done
        in
        let producer () =
          for _ = 1 to items do
            S.with_lock m (fun () ->
                incr buf;
                (* Broadcast so every consumer re-checks: the Mesa cost
                   model in its least favourable setting. *)
                S.broadcast nonempty)
          done
        in
        let cs = List.init consumers (fun _ -> S.fork consumer) in
        let p = S.fork producer in
        S.join p;
        List.iter S.join cs)
  in
  {
    rechecks = !rechecks;
    spurious = !spurious;
    switches = 0;
    steps = report.Firefly.Interleave.steps;
  }

let hoare ~seed =
  let rechecks = ref 0 and spurious = ref 0 in
  let switches = ref 0 in
  let report =
    Firefly.Interleave.run ~seed (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let mon = Taos_threads.Hoare.monitor () in
               let nonempty = Taos_threads.Hoare.condition mon in
               let buf = ref 0 in
               let consumer () =
                 for _ = 1 to items / consumers do
                   Taos_threads.Hoare.with_monitor mon (fun () ->
                       (* Hoare guarantee: one check; if false, wait once
                          and the predicate must hold on return. *)
                       if !buf = 0 then begin
                         Taos_threads.Hoare.wait nonempty;
                         incr rechecks;
                         if !buf = 0 then incr spurious
                       end;
                       assert (!buf > 0);
                       decr buf)
                 done
               in
               let producer () =
                 for _ = 1 to items do
                   Taos_threads.Hoare.with_monitor mon (fun () ->
                       incr buf;
                       Taos_threads.Hoare.signal nonempty)
                 done
               in
               let cs = List.init consumers (fun _ -> Ops.spawn consumer) in
               let p = Ops.spawn producer in
               Ops.join p;
               List.iter Ops.join cs;
               switches := Taos_threads.Hoare.switches mon)))
  in
  (match report.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> ()
  | _ -> failwith "E8: hoare run did not complete");
  {
    rechecks = !rechecks;
    spurious = !spurious;
    switches = !switches;
    steps = report.Firefly.Interleave.steps;
  }

let average f =
  let n = 10 in
  let ms = List.init n (fun seed -> f ~seed) in
  let avg g =
    float_of_int (List.fold_left (fun acc m -> acc + g m) 0 ms)
    /. float_of_int n
  in
  (avg (fun m -> m.rechecks), avg (fun m -> m.spurious),
   avg (fun m -> m.switches), avg (fun m -> m.steps))

let run () =
  let m_re, m_sp, m_sw, m_st = average mesa in
  let h_re, h_sp, h_sw, h_st = average hoare in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: producer/consumer, %d items, %d consumers (mean of 10 seeds)"
           items consumers)
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "semantics"; "predicate re-checks"; "spurious wakeups";
        "forced switches"; "steps" ]
  in
  Table.add_row t
    [ "Mesa (Threads: Wait is a hint)";
      Table.cell_float m_re; Table.cell_float m_sp;
      Table.cell_float m_sw; Table.cell_float ~decimals:0 m_st ];
  Table.add_row t
    [ "Hoare (signal passes monitor)";
      Table.cell_float h_re; Table.cell_float h_sp;
      Table.cell_float h_sw; Table.cell_float ~decimals:0 h_st ];
  Table.print t;
  print_endline
    "Shape check: Mesa pays re-checks and spurious wakeups; Hoare pays two\n\
     forced context switches per effective signal but never a spurious\n\
     wakeup (the assert in the consumer never fires)."

let experiment =
  {
    Exp.id = "E8";
    title = "Mesa hints vs Hoare guarantees";
    claim =
      "Return from Wait is only a hint that must be confirmed; the looser \
       specification leads to a more efficient implementation than Hoare's \
       guarantee (Informal Description).";
    run;
  }
