(** E9 — the specification as checkable documentation, at scale.

    Paper (Discussion): the condensed spec "is the reference of choice for
    programmers using the Threads interface", and reasoning that the
    implementation satisfies it was done by hand.  We mechanize: the model
    checker's state counts as client scenarios grow, and the conformance
    checker's throughput over long implementation traces — with zero
    violations against the final specification. *)

module Table = Threads_util.Table
module C = Threads_model.Checker

let checker_scaling () =
  let t =
    Table.create ~title:"E9a: model-checker scaling (final spec)"
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "scenario"; "states"; "transitions"; "ms" ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let row name scen =
    let r, ms = time (fun () -> C.run Spec_core.Threads_interface.final scen) in
    (match r.C.violation with
    | None -> ()
    | Some v -> Printf.printf "unexpected violation in %s: %s\n" name v.message);
    Table.add_row t
      [ name; Table.cell_int r.C.states; Table.cell_int r.C.transitions;
        Table.cell_float ms ]
  in
  List.iter
    (fun n -> row (Printf.sprintf "mutex x%d" n) (Scenarios.mutex_contention n))
    [ 2; 3; 4; 5 ];
  List.iter
    (fun n ->
      row (Printf.sprintf "wait/broadcast x%d" n) (Scenarios.wait_signal n))
    [ 1; 2; 3 ];
  row "P/V ping-pong" (Scenarios.semaphore_pingpong ());
  Table.print t

let conformance_throughput () =
  let report =
    Taos_threads.Api.run ~seed:5 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        let c = S.condition () in
        let buf = ref 0 in
        let consumer () =
          for _ = 1 to 500 do
            S.with_lock m (fun () ->
                while !buf = 0 do
                  S.wait m c
                done;
                decr buf)
          done
        in
        let producer () =
          for _ = 1 to 500 do
            S.with_lock m (fun () ->
                incr buf;
                S.signal c)
          done
        in
        let cs = List.init 3 (fun _ -> S.fork consumer) in
        let ps = List.init 3 (fun _ -> S.fork producer) in
        List.iter S.join (cs @ ps))
  in
  let machine = report.Firefly.Interleave.machine in
  let trace = Firefly.Machine.trace machine in
  let t0 = Unix.gettimeofday () in
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final trace
  in
  let dt = Unix.gettimeofday () -. t0 in
  let t =
    Table.create ~title:"E9b: conformance checking a long real trace"
      ~aligns:[ Table.Left; Table.Right ]
      [ "metric"; "value" ]
  in
  Table.add_row t [ "events in trace"; Table.cell_int rep.events ];
  Table.add_row t
    [ "violations"; Table.cell_int (List.length rep.errors) ];
  Table.add_row t
    [ "events / second";
      Table.cell_float ~decimals:0 (float_of_int rep.events /. dt) ];
  Table.print t

let run () =
  checker_scaling ();
  conformance_throughput ();
  print_endline
    "Shape check: exhaustive spec-level checking is interactive-speed for\n\
     scenario sizes that exhibit every incident; long implementation\n\
     traces check with zero violations."

let experiment =
  {
    Exp.id = "E9";
    title = "Checkable documentation at scale";
    claim =
      "The specification can serve as the reference of choice: here it is \
       machine-checked against client scenarios and implementation traces \
       (Discussion).";
    run;
  }
