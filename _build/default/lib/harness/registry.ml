(** Registers every experiment.  Call {!init} once before using {!Exp}. *)

let init =
  let done_ = ref false in
  fun () ->
    if not !done_ then begin
      done_ := true;
      List.iter Exp.register
        [
          E1.experiment;
          E2.experiment;
          E3.experiment;
          E4.experiment;
          E5.experiment;
          E6.experiment;
          E7.experiment;
          E8.experiment;
          E9.experiment;
          E10.experiment;
        ]
    end
