(** E5 — why condition variables are not semaphores.

    Paper: "The semantics of Wait and Signal could be achieved by
    representing each condition variable as a semaphore ... Unfortunately,
    this implementation does not generalize to Broadcast ... there might be
    arbitrarily many threads in the race (at the semicolon between
    Release(m) and P(c)), and the implementation of Broadcast would have no
    way of indicating that they should all resume."

    We broadcast to k waiters under (a) the Naive semaphore-based condition
    variable and (b) the real eventcount implementation, counting stranded
    waiters across seeds; then the exhaustive explorer exhibits that the
    naive scheme can strand a waiter even with just two of them. *)

module Table = Threads_util.Table
module Ops = Firefly.Machine.Ops

let seeds = 400

(* Returns the number of waiters left blocked forever. *)
let naive_run ~seed ~waiters:k =
  let report =
    Firefly.Interleave.run ~seed (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let pkg = Taos_threads.Pkg.create () in
               let m = Taos_threads.Mutex.create pkg in
               let c = Taos_threads.Naive.create pkg in
               let flag = ref false in
               let waiter () =
                 Taos_threads.Mutex.with_lock m (fun () ->
                     while not !flag do
                       Taos_threads.Naive.wait c m
                     done)
               in
               let ws = List.init k (fun _ -> Ops.spawn waiter) in
               Taos_threads.Mutex.with_lock m (fun () -> flag := true);
               Taos_threads.Naive.broadcast c;
               List.iter Ops.join ws)))
  in
  match report.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> 0
  | Firefly.Interleave.Deadlock blocked ->
    (* main + stranded waiters are blocked; don't count main *)
    max 0 (List.length blocked - 1)
  | Firefly.Interleave.Step_limit -> -1

let eventcount_run ~seed ~waiters:k =
  let report =
    Taos_threads.Api.run ~seed (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        let c = S.condition () in
        let flag = ref false in
        let waiter () =
          S.with_lock m (fun () ->
              while not !flag do
                S.wait m c
              done)
        in
        let ws = List.init k (fun _ -> S.fork waiter) in
        S.with_lock m (fun () -> flag := true);
        S.broadcast c;
        List.iter S.join ws)
  in
  match report.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> 0
  | Firefly.Interleave.Deadlock blocked -> max 0 (List.length blocked - 1)
  | Firefly.Interleave.Step_limit -> -1

let sweep run ~waiters =
  let runs_with_stranding = ref 0 and total_stranded = ref 0 in
  for seed = 0 to seeds - 1 do
    let s = run ~seed ~waiters in
    if s > 0 then begin
      incr runs_with_stranding;
      total_stranded := !total_stranded + s
    end
  done;
  (!runs_with_stranding, !total_stranded)

(* Exhaustive exploration needs a finite state space; the spin-lock's
   test-and-set retry chains make the Firefly backend unbounded, so we
   explore the co-routine backend (every action is one instruction, every
   block is a deschedule) running the same naive scheme. *)
let exhaustive_naive () =
  let build machine =
    ignore
      (Firefly.Machine.spawn_root machine (fun () ->
           let sync = Taos_threads.Uniproc.make () in
           let module S =
             (val sync : Taos_threads.Sync_intf.SYNC
                with type thread = Threads_util.Tid.t)
           in
           let m = S.mutex () in
           let sem = S.semaphore () in
           S.p sem;
           (* the condition's semaphore starts unavailable *)
           let nwaiters = ref 0 in
           let flag = ref false in
           let naive_wait () =
             incr nwaiters;
             S.release m;
             S.p sem;
             decr nwaiters;
             S.acquire m
           in
           let naive_broadcast () =
             for _ = 1 to !nwaiters do
               S.v sem
             done
           in
           let waiter () =
             S.with_lock m (fun () ->
                 while not !flag do
                   naive_wait ()
                 done)
           in
           let w1 = S.fork waiter in
           let w2 = S.fork waiter in
           S.with_lock m (fun () -> flag := true);
           naive_broadcast ();
           S.join w1;
           S.join w2))
  in
  Firefly.Explore.explore_bounded ~max_preemptions:2 ~max_depth:600
    ~max_runs:50_000 ~build
    (fun outcome ->
      match outcome.Firefly.Explore.verdict with
      | Firefly.Interleave.Deadlock _ -> Some "stranded waiter found"
      | Firefly.Interleave.Completed | Firefly.Interleave.Step_limit -> None)

let run () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E5: Broadcast to k waiters, stranded threads over %d seeds" seeds)
      [ "waiters"; "naive: runs stranding"; "naive: threads stranded";
        "eventcount: runs stranding" ]
  in
  List.iter
    (fun k ->
      let n_runs, n_threads = sweep naive_run ~waiters:k in
      let e_runs, _ = sweep eventcount_run ~waiters:k in
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int n_runs;
          Table.cell_int n_threads;
          Table.cell_int e_runs;
        ])
    [ 2; 4; 8 ];
  Table.print t;
  let err, stats = exhaustive_naive () in
  Printf.printf
    "Delay-bounded systematic search (<=2 preemptions), naive scheme, 2 waiters: %s \
     (%d terminal schedules, %d truncated, %d replayed steps)\n"
    (match err with
    | Some msg -> msg
    | None -> "no stranding found (unexpected)")
    stats.Firefly.Explore.terminal_runs stats.Firefly.Explore.truncated_runs
    stats.Firefly.Explore.total_steps;
  print_endline
    "Shape check: the semaphore-based scheme strands waiters under\n\
     Broadcast (and exhaustively must); the eventcount implementation\n\
     never does."

let experiment =
  {
    Exp.id = "E5";
    title = "Semaphore-based condition variables fail Broadcast";
    claim =
      "Representing a condition variable as a semaphore does not \
       generalize to Broadcast: arbitrarily many threads can be in the \
       race between Release(m) and P(c) (Implementation).";
    run;
  }
