(** Model-checking scenarios shared by experiments and tests. *)

open Spec_core
module P = Threads_model.Program

(* n threads contend for one mutex; mutual exclusion must hold. *)
let mutex_contention n =
  let prog = [ P.call "Acquire" [ P.Aobj "m" ]; P.call "Release" [ P.Aobj "m" ] ] in
  P.make
    ~name:(Printf.sprintf "%d threads, one mutex" n)
    ~objects:[ ("m", Sort.Thread) ]
    ~programs:(List.init n (fun _ -> prog))
    ~invariant:
      (P.mutual_exclusion
         ~regions:(List.init n (fun i -> (i, 0, 1, []))))
    ()

(* Producer/consumer handshake at the spec level: the consumer waits, the
   producer signals; deadlock is allowed because the spec's Signal may
   legally wake nobody (no liveness properties). *)
let wait_signal n_waiters =
  let waiter =
    [
      P.call "Acquire" [ P.Aobj "m" ];
      P.call "Wait" [ P.Aobj "m"; P.Aobj "c" ];
      P.call "Release" [ P.Aobj "m" ];
    ]
  in
  let signaller =
    [
      P.call "Acquire" [ P.Aobj "m" ];
      P.call "Release" [ P.Aobj "m" ];
      P.call "Broadcast" [ P.Aobj "c" ];
    ]
  in
  P.make
    ~name:(Printf.sprintf "%d waiters + broadcast" n_waiters)
    ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
    ~programs:(List.init n_waiters (fun _ -> waiter) @ [ signaller ])
    ~invariant:(fun view ->
      (* Nobody may hold the mutex while a thread mid-Resume holds it too;
         covered by sort-level checks — here we check c only ever contains
         waiter threads. *)
      let members = Value.as_set (P.value view "c") in
      if
        Threads_util.Tid.Set.exists
          (fun t -> t > n_waiters)
          members
      then Some "non-waiter thread appears in c"
      else None)
    ~allow_deadlock:true ()

(* Incident 1 (E7a): without the m = NIL guard on AlertResume's RAISES
   case, an alerted waiter can seize the mutex while another thread is in
   its critical section. *)
let alert_wait_mutual_exclusion () =
  P.make ~name:"AlertWait vs mutual exclusion"
    ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
    ~programs:
      [
        [
          P.call "Acquire" [ P.Aobj "m" ];
          P.call "AlertWait" [ P.Aobj "m"; P.Aobj "c" ];
          P.call "Release" [ P.Aobj "m" ];
        ];
        [ P.call "Acquire" [ P.Aobj "m" ]; P.call "Release" [ P.Aobj "m" ] ];
        [ P.call "Alert" [ P.Athread 0 ] ];
      ]
    ~invariant:
      (P.mutual_exclusion ~regions:[ (0, 0, 2, [ 1 ]); (1, 0, 1, []) ])
    ~allow_deadlock:true ()

(* Incident 3 (E7c): Nelson's bug — UNCHANGED [c] on the Alerted case
   leaves the departed thread in c. *)
let nelson () =
  P.make ~name:"Nelson's bug"
    ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
    ~programs:
      [
        [
          P.call "Acquire" [ P.Aobj "m" ];
          P.call "AlertWait" [ P.Aobj "m"; P.Aobj "c" ];
          P.call "Release" [ P.Aobj "m" ];
        ];
        [ P.call "Alert" [ P.Athread 0 ] ];
      ]
    ~invariant:(P.no_stale_waiters ~c:"c" ~waits:[ (0, 1) ])
    ~allow_deadlock:true ()

(* Semaphores at the spec level: P/V with no holder notion. *)
let semaphore_pingpong () =
  P.make ~name:"P/V ping-pong"
    ~objects:[ ("s", Sort.Semaphore) ]
    ~programs:
      [
        [ P.call "P" [ P.Aobj "s" ]; P.call "V" [ P.Aobj "s" ] ];
        [ P.call "P" [ P.Aobj "s" ]; P.call "V" [ P.Aobj "s" ] ];
      ]
    ()
