lib/harness/e10.ml: Exp Firefly List Printf Taos_threads Threads_util
