lib/harness/registry.ml: E1 E10 E2 E3 E4 E5 E6 E7 E8 E9 Exp List
