lib/harness/scenarios.ml: List Printf Sort Spec_core Threads_model Threads_util Value
