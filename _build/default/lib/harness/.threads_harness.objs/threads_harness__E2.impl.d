lib/harness/e2.ml: Exp Firefly List Printf Taos_threads Threads_util
