lib/harness/e6.ml: Exp Firefly List Taos_threads Threads_util
