lib/harness/e8.ml: Exp Firefly List Printf Taos_threads Threads_util
