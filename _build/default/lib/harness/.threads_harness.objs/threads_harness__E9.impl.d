lib/harness/e9.ml: Exp Firefly List Printf Scenarios Spec_core Taos_threads Threads_model Threads_util Unix
