lib/harness/e3.ml: Exp Firefly List Taos_threads Threads_util
