lib/harness/e1.ml: Exp Firefly Mutex Taos_threads Threads_multicore Threads_util Unix
