lib/harness/exp.mli:
