lib/harness/e7.ml: Exp Firefly Format List Printf Scenarios Spec_core Taos_threads Threads_interface Threads_model Threads_util
