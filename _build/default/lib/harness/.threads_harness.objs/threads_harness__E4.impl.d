lib/harness/e4.ml: Exp Firefly Hashtbl List Option Printf Spec_core Taos_threads Threads_model Threads_util
