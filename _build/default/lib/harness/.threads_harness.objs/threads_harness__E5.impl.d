lib/harness/e5.ml: Exp Firefly List Printf Taos_threads Threads_util
