lib/harness/exp.ml: List Printf String
