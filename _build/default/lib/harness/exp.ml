type t = { id : string; title : string; claim : string; run : unit -> unit }

let registry : t list ref = ref []

let register e = registry := e :: !registry

let all () =
  List.sort (fun a b -> compare a.id b.id) !registry

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = id) !registry

let banner e =
  Printf.printf "\n=== %s: %s ===\nClaim: %s\n\n" e.id e.title e.claim

let run_one e =
  banner e;
  e.run ()

let run_ids ids =
  List.filter
    (fun id ->
      match find id with
      | Some e ->
        run_one e;
        false
      | None -> true)
    ids

let run_all () = List.iter run_one (all ())
