(** Fixed-width ASCII tables for experiment output.

    Every experiment in the harness reports its results through this module
    so that [repro run E#] output has a uniform, diffable format. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table.  Column alignment defaults to
    [Right] for every column; override with [?aligns]. *)
val create : ?aligns:align list -> title:string -> string list -> t

(** [add_row t cells] appends a row.  Raises [Invalid_argument] if the cell
    count differs from the header count. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal rule between rows. *)
val add_rule : t -> unit

(** [render t] returns the table as a string ending in a newline. *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string

(** [cell_ratio x] formats a speedup/ratio as e.g. ["3.42x"]. *)
val cell_ratio : float -> string

(** [cell_pct x] formats a fraction [x] as a percentage, e.g. ["12.5%"]. *)
val cell_pct : float -> string
