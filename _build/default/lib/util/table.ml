type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns ~title headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter (function Cells c -> update c | Rule -> ()) rows;
  let buf = Buffer.create 256 in
  let rule_line () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule_line ();
  emit_cells t.headers;
  rule_line ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule_line ()) rows;
  rule_line ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_ratio x = Printf.sprintf "%.2fx" x
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
