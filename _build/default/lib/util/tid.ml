type t = int

let equal = Int.equal
let compare = Int.compare
let hash x = x
let pp ppf t = Format.fprintf ppf "t%d" t
let to_string t = "t" ^ string_of_int t

module Set = struct
  include Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{%s}"
      (String.concat ", " (List.map (fun t -> "t" ^ string_of_int t) (elements s)))

  let to_string s = Format.asprintf "%a" pp s
  let of_int_list = of_list
end
