lib/util/tid.ml: Format Int List Set String
