lib/util/table.mli:
