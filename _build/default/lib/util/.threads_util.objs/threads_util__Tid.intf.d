lib/util/tid.mli: Format Set
