lib/util/rng.mli:
