(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (schedulers, workload
    generators, seed sweeps) draws from this generator so that any run is
    reproducible from its integer seed alone.  We deliberately avoid
    [Stdlib.Random] to keep the stream independent of OCaml version. *)

type t

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [next t] returns the next raw 62-bit non-negative integer. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [pick t arr] returns a uniformly chosen element of [arr].
    Requires [arr] non-empty. *)
val pick : t -> 'a array -> 'a

(** [pick_list t xs] returns a uniformly chosen element of [xs].
    Requires [xs] non-empty. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent draws. *)
val split : t -> t
