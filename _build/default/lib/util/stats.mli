(** Summary statistics for experiment measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** [summarize samples] computes the summary of a non-empty list. *)
val summarize : float list -> summary

(** [summarize_ints samples] is [summarize] over integer samples. *)
val summarize_ints : int list -> summary

(** [mean samples] of a non-empty list. *)
val mean : float list -> float

(** [stddev samples] is the population standard deviation. *)
val stddev : float list -> float

(** [percentile p sorted] linearly interpolates the [p]-th percentile
    (0 <= p <= 100) of an already sorted array. *)
val percentile : float -> float array -> float

(** [pp_summary ppf s] prints ["mean=… sd=… p50=… p99=…"]. *)
val pp_summary : Format.formatter -> summary -> unit
