(** Thread identities.

    Both the specification tier ([spec_core]) and every implementation tier
    (simulator, uniprocessor, multicore) identify threads by these small
    integers, so abstraction functions between tiers are the identity on
    thread names. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Sets of thread ids, used for [SET OF Thread] spec values and for
    waiter queues' abstract views. *)
module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  (** [of_int_list xs] builds a set from a list of ids. *)
  val of_int_list : int list -> t
end
