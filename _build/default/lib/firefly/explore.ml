module Tid = Threads_util.Tid

type outcome = {
  verdict : Interleave.verdict;
  machine : Machine.t;
  schedule : Tid.t list;
}

type stats = {
  terminal_runs : int;
  truncated_runs : int;
  total_steps : int;
}

(* Run [build] following [prefix]; afterwards keep stepping while the
   choice is forced (a single runnable thread).  Returns the machine, the
   full schedule actually taken, and either the terminal verdict or the
   enabled set at the first real branch point. *)
let run_prefix ~max_depth ~build prefix =
  let m = Machine.create () in
  build m;
  let taken = ref [] in
  let steps = ref 0 in
  let do_step tid =
    taken := tid :: !taken;
    incr steps;
    ignore (Machine.step m tid)
  in
  List.iter
    (fun tid ->
      match Machine.status m tid with
      | Machine.Runnable -> do_step tid
      | _ -> failwith "Explore: stale replay prefix")
    prefix;
  let rec drive () =
    if !steps >= max_depth then `Truncated
    else
      match Machine.runnable m with
      | [] ->
        if Machine.live m then
          `Terminal
            (Interleave.Deadlock
               (List.filter
                  (fun tid -> Machine.status m tid = Machine.Blocked)
                  (Machine.all_tids m)))
        else `Terminal Interleave.Completed
      | [ only ] ->
        do_step only;
        drive ()
      | several -> `Branch several
  in
  let res = drive () in
  (m, List.rev !taken, res, !steps)

let explore ?(max_depth = 4000) ?(max_runs = 200_000) ~build check =
  let terminal = ref 0 and truncated = ref 0 and steps = ref 0 in
  let error = ref None in
  (* DFS over schedule prefixes.  Each stack entry is a prefix to expand. *)
  let stack = ref [ [] ] in
  let runs = ref 0 in
  while !error = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr runs;
      let m, schedule, res, nsteps = run_prefix ~max_depth ~build prefix in
      steps := !steps + nsteps;
      (match res with
      | `Terminal verdict ->
        incr terminal;
        error := check { verdict; machine = m; schedule }
      | `Truncated ->
        incr truncated;
        error := check { verdict = Interleave.Step_limit; machine = m; schedule }
      | `Branch enabled ->
        (* Expand: one new prefix per enabled thread.  [schedule] already
           includes the forced steps taken after the prefix. *)
        let children = List.map (fun tid -> schedule @ [ tid ]) enabled in
        stack := List.rev children @ !stack)
  done;
  ( !error,
    { terminal_runs = !terminal; truncated_runs = !truncated;
      total_steps = !steps } )

(* ---- delay-bounded (CHESS-style) search ----

   The baseline scheduler is non-preemptive: the current thread runs until
   it blocks or finishes; at such natural switch points every enabled
   thread is a (free) choice.  Additionally up to [max_preemptions]
   involuntary switches may be inserted anywhere.  Musuvathi & Qadeer's
   observation holds here too: most concurrency bugs need only one or two
   preemptions, so the polynomially-sized bounded space finds them where
   plain DFS/BFS over all interleavings drowns. *)

(* Replay [prefix] (a list of chosen tids, one per choice point), then
   report the next choice point or the terminal verdict. *)
let run_prefix_bounded ~max_depth ~max_preemptions ~build prefix =
  let m = Machine.create () in
  build m;
  let steps = ref 0 in
  let budget = ref max_preemptions in
  let current = ref None in
  let remaining = ref prefix in
  let consumed = ref [] in
  let do_step tid =
    incr steps;
    current := Some tid;
    ignore (Machine.step m tid)
  in
  let rec drive () =
    if !steps >= max_depth then `Truncated
    else
      match Machine.runnable m with
      | [] ->
        if Machine.live m then
          `Terminal
            (Interleave.Deadlock
               (List.filter
                  (fun tid -> Machine.status m tid = Machine.Blocked)
                  (Machine.all_tids m)))
        else `Terminal Interleave.Completed
      | enabled -> (
        let cur_enabled =
          match !current with
          | Some t when List.mem t enabled -> Some t
          | _ -> None
        in
        let candidates =
          match cur_enabled with
          | Some t when !budget <= 0 -> [ t ]
          | Some t -> t :: List.filter (fun x -> x <> t) enabled
          | None -> enabled
        in
        match candidates with
        | [ only ] ->
          do_step only;
          drive ()
        | _ -> (
          match !remaining with
          | choice :: rest ->
            remaining := rest;
            consumed := choice :: !consumed;
            if not (List.mem choice candidates) then
              failwith "Explore: stale bounded replay prefix";
            (match cur_enabled with
            | Some t when choice <> t -> decr budget
            | _ -> ());
            do_step choice;
            drive ()
          | [] -> `Choice candidates))
  in
  let res = drive () in
  (m, List.rev !consumed, res, !steps)

let explore_bounded ?(max_preemptions = 2) ?(max_depth = 4000)
    ?(max_runs = 200_000) ~build check =
  let terminal = ref 0 and truncated = ref 0 and steps = ref 0 in
  let error = ref None in
  let stack = ref [ [] ] in
  let runs = ref 0 in
  while !error = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr runs;
      let m, choices, res, nsteps =
        run_prefix_bounded ~max_depth ~max_preemptions ~build prefix
      in
      steps := !steps + nsteps;
      (match res with
      | `Terminal verdict ->
        incr terminal;
        error := check { verdict; machine = m; schedule = choices }
      | `Truncated ->
        incr truncated;
        error :=
          check { verdict = Interleave.Step_limit; machine = m;
                  schedule = choices }
      | `Choice candidates ->
        let children = List.map (fun tid -> choices @ [ tid ]) candidates in
        stack := children @ !stack)
  done;
  ( !error,
    { terminal_runs = !terminal; truncated_runs = !truncated;
      total_steps = !steps } )
