module Tid = Threads_util.Tid

type t = Machine.t -> Tid.t list -> Tid.t

let random seed =
  let rng = Threads_util.Rng.create seed in
  fun _m runnable ->
    Threads_util.Rng.pick_list rng runnable

let round_robin () =
  let last = ref (-1) in
  fun _m runnable ->
    let next =
      match List.find_opt (fun tid -> tid > !last) runnable with
      | Some tid -> tid
      | None -> List.hd runnable
    in
    last := next;
    next

let prefer_interrupts inner m runnable =
  match List.filter (Machine.is_interrupt m) runnable with
  | tid :: _ -> tid
  | [] -> inner m runnable

let replay prefix fallback =
  let remaining = ref prefix in
  fun m runnable ->
    match !remaining with
    | [] -> fallback m runnable
    | tid :: rest ->
      remaining := rest;
      if not (List.mem tid runnable) then
        failwith
          (Printf.sprintf "Sched.replay: t%d not runnable at replay point" tid);
      tid

let choose strategy m runnable =
  assert (runnable <> []);
  strategy m runnable
