(** Sequencers — the companion abstraction of eventcounts (Reed & Kanodia):
    a ticket dispenser assigning a total order to concurrent requests.
    [ticket] atomically returns the next integer.  Combined with an
    eventcount, a sequencer yields a FIFO lock: take a ticket, then await
    the eventcount reaching it.  Provided for completeness of the
    eventcount substrate; exercised in tests and the quickstart example. *)

type t

val create : unit -> t

(** [ticket s] — atomically draws the next ticket (0, 1, 2, ...). *)
val ticket : t -> int

(** [await ec target] — spin until eventcount [ec] reaches [target].
    Each poll costs one read; yields between polls so other simulated
    threads progress. *)
val await : Eventcount.t -> int -> unit
