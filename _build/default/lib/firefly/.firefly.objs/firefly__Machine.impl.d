lib/firefly/machine.ml: Array Cost Effect Hashtbl List Option Printf Threads_util Trace
