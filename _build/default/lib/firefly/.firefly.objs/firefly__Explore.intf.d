lib/firefly/explore.mli: Interleave Machine Threads_util
