lib/firefly/interleave.ml: List Machine Sched Threads_util
