lib/firefly/cost.mli:
