lib/firefly/eventcount.ml: Machine
