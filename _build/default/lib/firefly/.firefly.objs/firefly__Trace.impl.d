lib/firefly/trace.ml: Format Option Threads_util
