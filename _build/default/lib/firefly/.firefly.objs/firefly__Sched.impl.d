lib/firefly/sched.ml: List Machine Printf Threads_util
