lib/firefly/eventcount.mli:
