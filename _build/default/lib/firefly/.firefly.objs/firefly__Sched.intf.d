lib/firefly/sched.mli: Machine Threads_util
