lib/firefly/timed.mli: Cost Machine Threads_util
