lib/firefly/cost.ml:
