lib/firefly/timed.ml: Array Cost List Machine Threads_util
