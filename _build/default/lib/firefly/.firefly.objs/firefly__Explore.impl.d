lib/firefly/explore.ml: Interleave List Machine Threads_util
