lib/firefly/interleave.mli: Cost Machine Sched Threads_util
