lib/firefly/trace.mli: Format Threads_util
