lib/firefly/sequencer.ml: Eventcount Machine
