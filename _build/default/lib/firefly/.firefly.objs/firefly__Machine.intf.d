lib/firefly/machine.mli: Cost Threads_util Trace
