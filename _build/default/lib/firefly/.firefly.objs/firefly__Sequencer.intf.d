lib/firefly/sequencer.mli: Eventcount
