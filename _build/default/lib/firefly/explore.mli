(** Exhaustive schedule exploration by replay.

    Continuations are one-shot, so the machine cannot be forked; instead
    the program is re-run from scratch under each schedule prefix (the
    standard replay technique of systematic concurrency testers).  The
    state space is a tree of scheduling choices; [explore] walks it depth
    first up to a depth bound.

    Complexity is exponential in program length — use it on the small
    scenarios of the model-checking experiments (2-4 threads, a handful of
    synchronization operations each). *)

type outcome = {
  verdict : Interleave.verdict;
  machine : Machine.t;
  schedule : Threads_util.Tid.t list;  (** the choices that produced it *)
}

type stats = {
  terminal_runs : int;  (** schedules explored to completion/deadlock *)
  truncated_runs : int;  (** schedules cut off by the depth bound *)
  total_steps : int;  (** instructions executed across all replays *)
}

(** [explore ?max_depth ?max_runs ~build check] re-runs [build] under
    every schedule (up to the bounds), calling [check outcome] on each
    terminal or truncated run.  If [check] returns [Some err] exploration
    stops early and the error is returned with the stats.

    Choice points with a single enabled thread do not branch. *)
val explore :
  ?max_depth:int ->
  ?max_runs:int ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  (string option * stats)

(** [explore_bounded ?max_preemptions ...] — delay-bounded systematic
    search in the style of CHESS (Musuvathi & Qadeer): the baseline
    scheduler is non-preemptive (a thread runs until it blocks), switching
    freely only at natural blocking points, plus at most [max_preemptions]
    involuntary switches anywhere.  Most synchronization bugs need one or
    two preemptions, so this polynomial space finds them where exhaustive
    interleaving search drowns; it is the engine behind experiment E5's
    minimal stranding schedule.  In [outcome], [schedule] holds only the
    choice-point decisions, not every step. *)
val explore_bounded :
  ?max_preemptions:int ->
  ?max_depth:int ->
  ?max_runs:int ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  (string option * stats)
