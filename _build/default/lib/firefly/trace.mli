(** Execution traces of specification-level atomic actions.

    The Threads implementation emits one event at each linearization point
    (the instant its visible atomic action takes effect, e.g. the
    successful test-and-set inside Acquire).  The conformance checker in
    [threads_model] replays the event sequence against the formal
    specification.

    Events are deliberately implementation-flavoured: they carry only what
    the implementation knows at the linearization instant.  In particular
    [removed] records the threads a Signal/Broadcast abstractly removed
    from the condition — the queued threads it moved to the ready pool
    {e plus} the threads then inside the wakeup-waiting race window, which
    its eventcount increment also releases (the paper: "Signal will
    unblock all such threads"). *)

type arg =
  | Obj of int  (** a synchronization object, by implementation id *)
  | Thr of Threads_util.Tid.t  (** a by-value thread argument *)

type outcome = Ret | Raise of string

type event = {
  proc : string;  (** procedure name, e.g. "Wait" *)
  action : string;  (** atomic action, e.g. "Enqueue"; = [proc] if atomic *)
  self : Threads_util.Tid.t;
  args : (string * arg) list;  (** formal name -> argument *)
  outcome : outcome;
  result_bool : bool option;  (** TestAlert's return value *)
  removed : Threads_util.Tid.t list;
      (** Signal/Broadcast: threads abstractly removed from the condition *)
}

val make :
  proc:string ->
  ?action:string ->
  self:Threads_util.Tid.t ->
  args:(string * arg) list ->
  ?outcome:outcome ->
  ?result_bool:bool ->
  ?removed:Threads_util.Tid.t list ->
  unit ->
  event

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string
