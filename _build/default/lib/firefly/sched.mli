(** Scheduling strategies for the interleaving driver.

    A strategy picks the next thread to step from the runnable set.  All
    strategies are deterministic functions of their construction arguments,
    so every run is reproducible. *)

type t

(** [random seed] — uniform choice among runnable threads. *)
val random : int -> t

(** [round_robin ()] — cycles through runnable threads in tid order. *)
val round_robin : unit -> t

(** [prefer_interrupts inner] — wraps [inner]: whenever an
    interrupt-context thread is runnable, pick it (the hardware preempts). *)
val prefer_interrupts : t -> t

(** [replay prefix fallback] follows the recorded tid choices in [prefix],
    then defers to [fallback].  Used by the exhaustive explorer. *)
val replay : Threads_util.Tid.t list -> t -> t

(** [choose strategy machine runnable] picks from a non-empty list. *)
val choose : t -> Machine.t -> Threads_util.Tid.t list -> Threads_util.Tid.t
