(** Cycle-accurate timed driver: P processors with per-processor clocks,
    priority scheduling, time slicing and context-switch costs — the
    performance driver for throughput/latency experiments.

    At each step the processor with the smallest clock acts: it executes
    one instruction of its current thread, preempts it at slice expiry (if
    another thread is waiting), or picks the highest-priority waiting
    thread.  Idle processors' clocks chase the busy ones, so cross-
    processor instruction order approximates true timing order. *)

type verdict = Completed | Deadlock of Threads_util.Tid.t list | Cycle_limit

type report = {
  verdict : verdict;
  machine : Machine.t;
  sim_cycles : int;  (** elapsed simulated time = max processor clock *)
  busy_cycles : int;  (** total non-idle cycles across processors *)
  context_switches : int;
  steps : int;
}

(** [run ~processors build] — [build] spawns the root threads.  Default
    [max_cycles] 50_000_000.  Interrupt-context threads preempt: whenever
    one is runnable it is scheduled first regardless of priority. *)
val run :
  processors:int ->
  ?seed:int ->
  ?cost:Cost.t ->
  ?max_cycles:int ->
  (Machine.t -> unit) ->
  report

(** [utilization report ~processors] is busy/(sim_cycles*processors). *)
val utilization : report -> processors:int -> float
