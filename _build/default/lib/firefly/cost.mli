(** Instruction-cost model of the simulated multiprocessor.

    Calibration: the paper reports that an uncontended Acquire/Release pair
    runs in 5 MicroVAX II instructions and 10 microseconds, i.e. roughly
    2 μs per instruction on that machine.  We charge cycles per simulated
    memory instruction and convert with {!us_per_cycle}; interlocked
    operations (test-and-set, fetch-and-add) are costlier than plain
    loads/stores, as on the real bus. *)

type t = {
  read : int;
  write : int;
  tas : int;  (** interlocked test-and-set *)
  faa : int;  (** interlocked fetch-and-add *)
  context_switch : int;  (** charged by the timed driver on reschedule *)
  time_slice : int;  (** preemption quantum, in cycles *)
}

(** MicroVAX-II-flavoured defaults: read/write 1 cycle, interlocked ops
    3 cycles, context switch 50 cycles, 10000-cycle time slice. *)
val default : t

(** Microseconds per cycle under the calibration above (2.0). *)
val us_per_cycle : float

(** [us_of_cycles c] converts simulated cycles to microseconds. *)
val us_of_cycles : int -> float
