module Tid = Threads_util.Tid

type verdict = Completed | Deadlock of Tid.t list | Cycle_limit

type report = {
  verdict : verdict;
  machine : Machine.t;
  sim_cycles : int;
  busy_cycles : int;
  context_switches : int;
  steps : int;
}

type proc = {
  mutable clock : int;
  mutable cur : Tid.t option;
  mutable slice_left : int;
  mutable busy : int;
}

let run ~processors ?(seed = 0) ?(cost = Cost.default) ?(max_cycles = 50_000_000)
    build =
  assert (processors > 0);
  let m = Machine.create ~seed ~cost () in
  build m;
  let rng = Threads_util.Rng.create (seed lxor 0x7ead) in
  let procs =
    Array.init processors (fun _ ->
        { clock = 0; cur = None; slice_left = cost.time_slice; busy = 0 })
  in
  let switches = ref 0 in
  let steps = ref 0 in
  let assigned tid = Array.exists (fun p -> p.cur = Some tid) procs in
  (* Waiting threads, best first: interrupt context beats priority beats
     (seeded) arrival order. *)
  let pick_waiting () =
    let waiting =
      List.filter (fun tid -> not (assigned tid)) (Machine.runnable m)
    in
    match waiting with
    | [] -> None
    | _ ->
      let score tid =
        ( (if Machine.is_interrupt m tid then 1 else 0),
          Machine.priority m tid )
      in
      let best =
        List.fold_left
          (fun acc tid ->
            match acc with
            | None -> Some tid
            | Some b -> if score tid > score b then Some tid else acc)
          None waiting
      in
      best
  in
  let min_proc () =
    let best = ref procs.(0) in
    Array.iter (fun p -> if p.clock < !best.clock then best := p) procs;
    !best
  in
  let charge_switch p =
    p.clock <- p.clock + cost.context_switch;
    p.busy <- p.busy + cost.context_switch;
    p.slice_left <- cost.time_slice;
    incr switches
  in
  let interrupt_waiting () =
    List.exists
      (fun tid -> Machine.is_interrupt m tid && not (assigned tid))
      (Machine.runnable m)
  in
  let rec loop () =
    if (min_proc ()).clock > max_cycles then Cycle_limit
    else begin
      let p = min_proc () in
      match p.cur with
      | Some tid -> begin
        match Machine.status m tid with
        | Machine.Runnable ->
          let preempt_for_interrupt =
            interrupt_waiting () && not (Machine.is_interrupt m tid)
          in
          if
            preempt_for_interrupt
            || (p.slice_left <= 0 && pick_waiting () <> None)
          then begin
            (* Preempt: thread goes back to the waiting pool. *)
            p.cur <- None;
            charge_switch p;
            loop ()
          end
          else begin
            let c = Machine.step m tid in
            incr steps;
            p.clock <- p.clock + c;
            p.busy <- p.busy + c;
            p.slice_left <- p.slice_left - max c 1;
            loop ()
          end
        | Machine.Blocked | Machine.Finished | Machine.Failed _ ->
          p.cur <- None;
          loop ()
      end
      | None -> begin
        match pick_waiting () with
        | Some tid ->
          p.cur <- Some tid;
          charge_switch p;
          loop ()
        | None ->
          (* Idle: catch up with the busiest-but-soonest processor so a
             wakeup produced by it can be picked up promptly. *)
          let busy_clocks =
            Array.to_list procs
            |> List.filter_map (fun q ->
                   if q.cur <> None then Some q.clock else None)
          in
          (match busy_clocks with
          | [] ->
            if Machine.live m then
              Deadlock
                (List.filter
                   (fun tid -> Machine.status m tid = Machine.Blocked)
                   (Machine.all_tids m))
            else Completed
          | cs ->
            let target = List.fold_left min max_int cs in
            (* Jitter of one cycle avoids lock-step artefacts. *)
            p.clock <- max (p.clock + 1) (target + Threads_util.Rng.int rng 2);
            loop ())
      end
    end
  in
  let verdict = loop () in
  let sim_cycles = Array.fold_left (fun acc p -> max acc p.clock) 0 procs in
  let busy_cycles = Array.fold_left (fun acc p -> acc + p.busy) 0 procs in
  {
    verdict;
    machine = m;
    sim_cycles;
    busy_cycles;
    context_switches = !switches;
    steps = !steps;
  }

let utilization r ~processors =
  if r.sim_cycles = 0 then 0.0
  else float_of_int r.busy_cycles /. float_of_int (r.sim_cycles * processors)
