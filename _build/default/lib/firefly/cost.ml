type t = {
  read : int;
  write : int;
  tas : int;
  faa : int;
  context_switch : int;
  time_slice : int;
}

let default =
  {
    read = 1;
    write = 1;
    tas = 3;
    faa = 3;
    context_switch = 50;
    time_slice = 10_000;
  }

let us_per_cycle = 2.0
let us_of_cycles c = float_of_int c *. us_per_cycle
