(** Instruction-granularity interleaving driver.

    Steps one runnable thread at a time under a {!Sched} strategy.  This is
    the correctness driver: it models threads running at arbitrary relative
    speeds, which is exactly the "programmer can reason as if there were as
    many processors as threads" stance the paper takes. *)

type verdict =
  | Completed  (** every thread finished *)
  | Deadlock of Threads_util.Tid.t list  (** the blocked threads *)
  | Step_limit  (** the bound was hit with runnable threads remaining *)

type report = {
  verdict : verdict;
  steps : int;
  machine : Machine.t;  (** for trace/counter inspection *)
}

(** [run ?max_steps ?strategy build] creates a machine, passes it to
    [build] (which spawns root threads via {!Machine.spawn_root}), then
    steps until completion, deadlock or [max_steps] (default 1_000_000).

    If a thread fails with an unexpected exception the failure is recorded
    in the machine ({!Machine.failures}) and the run continues — tests
    decide how strict to be. *)
val run :
  ?max_steps:int ->
  ?strategy:Sched.t ->
  ?seed:int ->
  ?cost:Cost.t ->
  (Machine.t -> unit) ->
  report

(** [run_main ?max_steps ?strategy ?seed body] — convenience wrapper
    spawning a single root thread running [body]. *)
val run_main :
  ?max_steps:int ->
  ?strategy:Sched.t ->
  ?seed:int ->
  ?cost:Cost.t ->
  (unit -> unit) ->
  report
