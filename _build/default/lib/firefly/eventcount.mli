(** Eventcounts (Reed & Kanodia, SOSP 1977) on simulated memory.

    An eventcount is an atomically-readable, monotonically-increasing
    integer.  The Threads implementation uses one per condition variable to
    close the wakeup-waiting race: Wait reads the count before releasing
    the mutex, and Block compares it again under the spin-lock — an
    intervening advance (from Signal/Broadcast) makes Block return
    immediately instead of sleeping.

    These functions perform machine effects and must run inside simulated
    thread code. *)

type t

(** [create ()] allocates an eventcount initialized to 0. *)
val create : unit -> t

(** [read ec] — the current value (one atomic load). *)
val read : t -> int

(** [advance ec] atomically increments the count and returns the {e new}
    value. *)
val advance : t -> int

(** [value_addr ec] — the underlying word address (for packages that
    manipulate it under their own spin-lock). *)
val value_addr : t -> int
