type t = { addr : int }

let create () = { addr = Machine.Ops.alloc 1 }
let read ec = Machine.Ops.read ec.addr
let advance ec = Machine.Ops.faa ec.addr 1 + 1
let value_addr ec = ec.addr
