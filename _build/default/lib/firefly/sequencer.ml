type t = { addr : int }

let create () = { addr = Machine.Ops.alloc 1 }
let ticket s = Machine.Ops.faa s.addr 1

let rec await ec target =
  if Eventcount.read ec < target then begin
    Machine.Ops.yield ();
    await ec target
  end
