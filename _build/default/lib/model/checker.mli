(** Explicit-state model checker over the specification semantics.

    Explores every interleaving of atomic actions a scenario's threads can
    perform under a given interface, using the finitized outcome
    enumeration of {!Spec_core.Semantics} — so every behaviour the {e
    specification} allows is covered, including non-deterministic ENSURES
    and overlapping WHEN guards.  Visited states are memoized on (abstract
    state, program counters).

    Properties checked: the scenario invariant after every transition,
    REQUIRES at every call, and deadlock (unless allowed).  On a violation
    the shortest-path-so-far trace of actions is reported. *)

type trace_entry = {
  thread : int;  (** program index *)
  proc : string;
  action : string;
  outcome : Spec_core.Proc.outcome;
  case : int;
}

val pp_trace_entry : Format.formatter -> trace_entry -> unit

type violation = {
  kind : [ `Invariant | `Deadlock | `Requires ];
  message : string;
  trace : trace_entry list;  (** actions from the initial state *)
}

type result = {
  violation : violation option;  (** first one found (DFS order) *)
  states : int;  (** distinct states visited *)
  transitions : int;
}

(** [run iface scenario] explores exhaustively (the space must be finite,
    which straight-line programs guarantee).  [max_states] (default
    2_000_000) is a safety valve; hitting it raises [Failure]. *)
val run :
  ?max_states:int -> Spec_core.Proc.interface -> Program.t -> result

val pp_result : Format.formatter -> result -> unit
