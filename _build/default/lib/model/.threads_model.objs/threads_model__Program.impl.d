lib/model/program.ml: Array Format List Sort Spec_core Spec_obj State String Threads_util Value
