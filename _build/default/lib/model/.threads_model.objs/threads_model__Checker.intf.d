lib/model/checker.mli: Format Program Spec_core
