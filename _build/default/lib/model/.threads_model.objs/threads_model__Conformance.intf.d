lib/model/conformance.mli: Firefly Format Spec_core
