lib/model/checker.ml: Array Buffer Format Hashtbl List Printf Proc Program Semantics Spec_core Spec_obj State Value
