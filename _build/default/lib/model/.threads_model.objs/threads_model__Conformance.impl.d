lib/model/conformance.ml: Firefly Format Hashtbl List Option Printf Proc Semantics Sort Spec_core Spec_obj State Term Threads_util Value
