lib/model/program.mli: Spec_core Threads_util
