exception Alerted = Taos_threads.Sync_intf.Alerted

(* Polymorphic FIFO with arbitrary removal; touched only under the global
   spin-lock. *)
module Dq = struct
  type 'a t = { mutable items : 'a list }

  let create () = { items = [] }
  let push q x = q.items <- q.items @ [ x ]

  let pop q =
    match q.items with
    | [] -> None
    | x :: rest ->
      q.items <- rest;
      Some x

  let pop_all q =
    let xs = q.items in
    q.items <- [];
    xs

  let remove q x = q.items <- List.filter (fun y -> not (y == x)) q.items
end

type thread = {
  tid : int;
  parker : Parker.t;
  mutable domain : unit Domain.t option;
  mutable woken_by_alert : bool;  (* written under the nub lock *)
}

(* One package per process, like one Threads package per address space. *)
let nub = Spin.create ()
let tid_counter = Atomic.make 0

let new_thread () =
  {
    tid = Atomic.fetch_and_add tid_counter 1;
    parker = Parker.create ();
    domain = None;
    woken_by_alert = false;
  }

let key = Domain.DLS.new_key new_thread

(* Alerting state, under the nub lock. *)
let pending : (int, unit) Hashtbl.t = Hashtbl.create 16
let cancels : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16

module Sync = struct
  type nonrec thread = thread

  type mutex = {
    bit : bool Atomic.t;
    mq : thread Dq.t;
    waiters : int Atomic.t;  (* |mq|, written under the nub lock *)
  }

  type condition = {
    evc : int Atomic.t;
    interest : int Atomic.t;
    cq : thread Dq.t;
  }

  type semaphore = mutex  (* "the implementation of semaphores is identical" *)

  let self () = Domain.DLS.get key

  let mutex () =
    { bit = Atomic.make false; mq = Dq.create (); waiters = Atomic.make 0 }

  let semaphore () = mutex ()

  let condition () =
    { evc = Atomic.make 0; interest = Atomic.make 0; cq = Dq.create () }

  (* ---- mutex / semaphore core ---- *)

  let try_bit m = Atomic.compare_and_set m.bit false true

  (* The Nub subroutine for Acquire/P: enqueue, re-test, park or retry.
     [alertable] adds the pending check and cancellation registration.
     Returns [`Alerted] only for alertable calls. *)
  let rec slow_lock m ~alertable =
    let me = self () in
    Spin.acquire nub;
    if alertable && Hashtbl.mem pending me.tid then begin
      Spin.release nub;
      `Alerted
    end
    else begin
      Dq.push m.mq me;
      Atomic.incr m.waiters;
      if Atomic.get m.bit then begin
        if alertable then
          Hashtbl.replace cancels me.tid (fun () ->
              Dq.remove m.mq me;
              Atomic.decr m.waiters;
              me.woken_by_alert <- true;
              Parker.unpark me.parker);
        Spin.release nub;
        Parker.park me.parker;
        let alerted =
          alertable
          &&
          begin
            Spin.acquire nub;
            Hashtbl.remove cancels me.tid;
            let w = me.woken_by_alert in
            me.woken_by_alert <- false;
            Spin.release nub;
            w
          end
        in
        if alerted then `Alerted
        else if try_bit m then `Acquired
        else slow_lock m ~alertable
      end
      else begin
        Dq.remove m.mq me;
        Atomic.decr m.waiters;
        Spin.release nub;
        if try_bit m then `Acquired else slow_lock m ~alertable
      end
    end

  let lock m ~alertable =
    if try_bit m then `Acquired else slow_lock m ~alertable

  let unlock m =
    Atomic.set m.bit false;
    if Atomic.get m.waiters <> 0 then begin
      Spin.acquire nub;
      (match Dq.pop m.mq with
      | Some t ->
        Atomic.decr m.waiters;
        Hashtbl.remove cancels t.tid;
        Parker.unpark t.parker
      | None -> ());
      Spin.release nub
    end

  let acquire m =
    match lock m ~alertable:false with `Acquired -> () | `Alerted -> assert false

  let release = unlock

  let with_lock m f =
    acquire m;
    Fun.protect ~finally:(fun () -> release m) f

  let p = acquire
  let v = unlock

  let alert_p s =
    match lock s ~alertable:true with
    | `Acquired -> ()
    | `Alerted ->
      Spin.acquire nub;
      Hashtbl.remove pending (self ()).tid;
      Spin.release nub;
      raise Alerted

  (* ---- condition variables ---- *)

  (* Block(c, i): sleep unless the eventcount moved since [i]. *)
  let block c i ~alertable =
    let me = self () in
    Spin.acquire nub;
    if Atomic.get c.evc <> i then begin
      Spin.release nub;
      `Stale
    end
    else if alertable && Hashtbl.mem pending me.tid then begin
      Spin.release nub;
      `Alerted_now
    end
    else begin
      Dq.push c.cq me;
      if alertable then
        Hashtbl.replace cancels me.tid (fun () ->
            Dq.remove c.cq me;
            me.woken_by_alert <- true;
            Parker.unpark me.parker);
      Spin.release nub;
      Parker.park me.parker;
      `Woken
    end

  let wait_generic c m ~alertable =
    let me = self () in
    ignore (Atomic.fetch_and_add c.interest 1);
    let i = Atomic.get c.evc in
    unlock m;
    let wake = block c i ~alertable in
    let raise_it =
      alertable
      &&
      match wake with
      | `Alerted_now -> true
      | `Stale | `Woken ->
        Spin.acquire nub;
        Hashtbl.remove cancels me.tid;
        let w = me.woken_by_alert || Hashtbl.mem pending me.tid in
        me.woken_by_alert <- false;
        Spin.release nub;
        w
    in
    acquire m;
    ignore (Atomic.fetch_and_add c.interest (-1));
    if raise_it then begin
      Spin.acquire nub;
      Hashtbl.remove pending me.tid;
      Spin.release nub;
      raise Alerted
    end

  let wait m c = wait_generic c m ~alertable:false
  let alert_wait m c = wait_generic c m ~alertable:true

  let wake_some c ~take_all =
    if Atomic.get c.interest <> 0 then begin
      Spin.acquire nub;
      ignore (Atomic.fetch_and_add c.evc 1);
      let woken =
        if take_all then Dq.pop_all c.cq
        else match Dq.pop c.cq with Some t -> [ t ] | None -> []
      in
      List.iter
        (fun t ->
          Hashtbl.remove cancels t.tid;
          Parker.unpark t.parker)
        woken;
      Spin.release nub
    end

  let signal c = wake_some c ~take_all:false
  let broadcast c = wake_some c ~take_all:true

  (* ---- alerting ---- *)

  let alert (t : thread) =
    Spin.acquire nub;
    Hashtbl.replace pending t.tid ();
    (match Hashtbl.find_opt cancels t.tid with
    | Some cancel ->
      Hashtbl.remove cancels t.tid;
      cancel ()
    | None -> ());
    Spin.release nub

  let test_alert () =
    let me = self () in
    Spin.acquire nub;
    let was = Hashtbl.mem pending me.tid in
    Hashtbl.remove pending me.tid;
    Spin.release nub;
    was

  (* ---- threads ---- *)

  let fork f =
    let t = new_thread () in
    let d =
      Domain.spawn (fun () ->
          Domain.DLS.set key t;
          f ())
    in
    t.domain <- Some d;
    t

  let join t =
    match t.domain with
    | Some d -> Domain.join d
    | None -> invalid_arg "Multicore.join: not a forked thread"

  let yield () = Domain.cpu_relax ()
end

let run body = body ()
