(** The Threads package on real parallel hardware: OCaml 5 domains,
    [Atomic] words, and the same two-layer structure as the Firefly code.

    - Mutex/Semaphore: an atomic lock bit with an in-line test-and-set fast
      path; contended paths enter the "Nub" (the global spin-lock) to queue
      and park, re-testing the bit exactly as the paper's Nub subroutine
      does.
    - Condition: an atomic eventcount plus a queue; Wait reads the count,
      releases the mutex, and Block compares the count under the spin-lock
      — the wakeup-waiting race is closed the same way as on the Firefly.
    - Alerting: a pending set under the spin-lock with cancellation of
      alertable sleeps.

    This backend implements {!Taos_threads.Sync_intf.SYNC}, so every
    example and workload in the repository also runs with true parallelism.
    It emits no trace events (real concurrency offers no atomic
    log-with-action); its conformance evidence is the simulator running the
    same algorithm, plus the linearizability-flavoured stress tests.

    [fork] spawns a domain; keep thread counts near the core count. *)

type thread

(** Equal to {!Taos_threads.Sync_intf.Alerted}. *)
exception Alerted

(** The SYNC instance.  Global (one package per process), matching the
    Threads package being one per address space. *)
module Sync : Taos_threads.Sync_intf.SYNC with type thread = thread

(** [run body] — run [body] on the main thread with the package
    initialized; joins nothing implicitly. *)
val run : (unit -> 'a) -> 'a
