(** The Nub's spin-lock, on real hardware: an [Atomic.t bool] acquired by
    busy-waiting on compare-and-set (the test-and-set loop of the paper)
    with [Domain.cpu_relax] between attempts. *)

type t

val create : unit -> t
val acquire : t -> unit
val release : t -> unit

(** [try_acquire l] — single attempt, no spin. *)
val try_acquire : t -> bool
