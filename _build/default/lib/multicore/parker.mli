(** Per-thread parking: the real-hardware stand-in for the Nub's
    deschedule/ready pair.  A one-shot permit with the wakeup-waiting
    property: an [unpark] arriving before [park] makes the park return
    immediately (Saltzer's wakeup-waiting switch), so the Nub protocols
    need no further care about that race. *)

type t

val create : unit -> t

(** [park p] — block until the permit is available, then consume it. *)
val park : t -> unit

(** [unpark p] — deposit the permit, waking a parked thread if any. *)
val unpark : t -> unit
