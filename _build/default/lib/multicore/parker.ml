type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable permit : bool;
}

let create () = { m = Mutex.create (); cv = Condition.create (); permit = false }

let park p =
  Mutex.lock p.m;
  while not p.permit do
    Condition.wait p.cv p.m
  done;
  p.permit <- false;
  Mutex.unlock p.m

let unpark p =
  Mutex.lock p.m;
  p.permit <- true;
  Condition.signal p.cv;
  Mutex.unlock p.m
