lib/multicore/parker.ml: Condition Mutex
