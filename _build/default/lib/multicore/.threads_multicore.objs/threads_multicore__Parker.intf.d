lib/multicore/parker.mli:
