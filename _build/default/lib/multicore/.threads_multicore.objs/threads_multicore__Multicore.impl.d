lib/multicore/multicore.ml: Atomic Domain Fun Hashtbl List Parker Spin Taos_threads
