lib/multicore/spin.mli:
