lib/multicore/multicore.mli: Taos_threads
