lib/multicore/spin.ml: Atomic Domain
