type t = { bit : bool Atomic.t }

let create () = { bit = Atomic.make false }

let try_acquire l = Atomic.compare_and_set l.bit false true

let rec acquire l =
  if not (try_acquire l) then begin
    Domain.cpu_relax ();
    acquire l
  end

let release l = Atomic.set l.bit false
