(* Model-based tests of the Nub's thread queues. *)

let test_fifo () =
  let q = Taos_threads.Tqueue.create () in
  Alcotest.(check bool) "empty" true (Taos_threads.Tqueue.is_empty q);
  Taos_threads.Tqueue.push q 1;
  Taos_threads.Tqueue.push q 2;
  Taos_threads.Tqueue.push q 3;
  Alcotest.(check int) "length" 3 (Taos_threads.Tqueue.length q);
  Alcotest.(check (option int)) "pop head" (Some 1) (Taos_threads.Tqueue.pop q);
  Alcotest.(check (option int)) "pop next" (Some 2) (Taos_threads.Tqueue.pop q);
  Taos_threads.Tqueue.push q 4;
  Alcotest.(check (list int)) "pop_all" [ 3; 4 ] (Taos_threads.Tqueue.pop_all q);
  Alcotest.(check (option int)) "empty pop" None (Taos_threads.Tqueue.pop q)

let test_remove () =
  let q = Taos_threads.Tqueue.create () in
  List.iter (Taos_threads.Tqueue.push q) [ 1; 2; 3 ];
  Alcotest.(check bool) "remove mid" true (Taos_threads.Tqueue.remove q 2);
  Alcotest.(check bool) "remove absent" false (Taos_threads.Tqueue.remove q 9);
  Alcotest.(check (list int)) "order kept" [ 1; 3 ]
    (Taos_threads.Tqueue.elements q);
  Alcotest.(check bool) "mem" true (Taos_threads.Tqueue.mem q 3);
  Alcotest.(check bool) "not mem" false (Taos_threads.Tqueue.mem q 2)

(* model-based: a Tqueue behaves like a list under a random op sequence *)
let prop_model =
  let open QCheck in
  Test.make ~name:"tqueue vs list model" ~count:300
    (list (pair (int_range 0 2) (int_range 0 5)))
    (fun ops ->
      let q = Taos_threads.Tqueue.create () in
      let model = ref [] in
      List.for_all
        (fun (op, x) ->
          match op with
          | 0 ->
            Taos_threads.Tqueue.push q x;
            model := !model @ [ x ];
            true
          | 1 -> (
            let got = Taos_threads.Tqueue.pop q in
            match !model with
            | [] -> got = None
            | h :: t ->
              model := t;
              got = Some h)
          | _ ->
            let was = List.mem x !model in
            model := List.filter (fun y -> y <> x) !model;
            Taos_threads.Tqueue.remove q x = was
            && Taos_threads.Tqueue.elements q = !model)
        ops
      && Taos_threads.Tqueue.elements q = !model)

let suite =
  ( "tqueue",
    [
      Alcotest.test_case "fifo" `Quick test_fifo;
      Alcotest.test_case "remove" `Quick test_remove;
      QCheck_alcotest.to_alcotest prop_model;
    ] )
