(* Tests of the spec-level model checker on the shared scenarios. *)

open Spec_core
module C = Threads_model.Checker
module P = Threads_model.Program
module S = Threads_harness.Scenarios

let no_violation name r =
  match r.C.violation with
  | None -> ()
  | Some v -> Alcotest.fail (Printf.sprintf "%s: unexpected %s" name v.message)

let violated kind name (r : C.result) =
  match r.C.violation with
  | Some v when v.kind = kind -> v
  | Some v ->
    Alcotest.fail (Printf.sprintf "%s: wrong violation kind (%s)" name v.message)
  | None -> Alcotest.fail (name ^ ": expected a violation")

let test_mutex_ok () =
  List.iter
    (fun n ->
      let r = C.run Threads_interface.final (S.mutex_contention n) in
      no_violation "mutex" r;
      Alcotest.(check bool) "explored some states" true (r.C.states > n))
    [ 2; 3; 4 ]

let test_state_counts_grow () =
  let states n =
    (C.run Threads_interface.final (S.mutex_contention n)).C.states
  in
  Alcotest.(check bool) "monotone growth" true (states 2 < states 3);
  Alcotest.(check bool) "more growth" true (states 3 < states 4)

let test_wait_broadcast_ok () =
  let r = C.run Threads_interface.final (S.wait_signal 2) in
  no_violation "wait/broadcast" r

let test_pv_ok () =
  let r = C.run Threads_interface.final (S.semaphore_pingpong ()) in
  no_violation "P/V" r

let test_deadlock_detected () =
  (* One thread does P twice: the second must block forever. *)
  let scen =
    P.make ~name:"double P"
      ~objects:[ ("s", Sort.Semaphore) ]
      ~programs:[ [ P.call "P" [ P.Aobj "s" ]; P.call "P" [ P.Aobj "s" ] ] ]
      ()
  in
  let v = violated `Deadlock "double P" (C.run Threads_interface.final scen) in
  Alcotest.(check int) "one step before deadlock" 1 (List.length v.trace)

let test_allow_deadlock () =
  let scen =
    P.make ~name:"double P allowed"
      ~objects:[ ("s", Sort.Semaphore) ]
      ~programs:[ [ P.call "P" [ P.Aobj "s" ]; P.call "P" [ P.Aobj "s" ] ] ]
      ~allow_deadlock:true ()
  in
  no_violation "allowed deadlock" (C.run Threads_interface.final scen)

let test_requires_detected () =
  (* Release without holding: REQUIRES m = SELF is false. *)
  let scen =
    P.make ~name:"bare release"
      ~objects:[ ("m", Sort.Thread) ]
      ~programs:[ [ P.call "Release" [ P.Aobj "m" ] ] ]
      ()
  in
  ignore (violated `Requires "bare release" (C.run Threads_interface.final scen))

let test_incident_1 () =
  let scen = S.alert_wait_mutual_exclusion () in
  no_violation "final" (C.run Threads_interface.final scen);
  let v =
    violated `Invariant "missing guard"
      (C.run Threads_interface.missing_mutex_guard scen)
  in
  (* the counterexample must end with the alerted thread raising *)
  match List.rev v.trace with
  | last :: _ ->
    Alcotest.(check string) "last step is AlertResume" "AlertResume"
      last.C.action;
    Alcotest.(check bool) "which raises" true
      (last.C.outcome = Proc.Raises "Alerted")
  | [] -> Alcotest.fail "empty counterexample"

let test_incident_3 () =
  let scen = S.nelson () in
  no_violation "final" (C.run Threads_interface.final scen);
  let v =
    violated `Invariant "nelson" (C.run Threads_interface.nelson_bug scen)
  in
  Alcotest.(check bool) "short counterexample" true (List.length v.trace <= 6)

let test_signal_nondeterminism_explored () =
  (* With one waiter and one signaller, the checker must consider the
     signal-wakes-nobody outcome: the scenario can deadlock, which we allow
     and verify occurs by NOT allowing it and expecting the deadlock. *)
  let scen_strict =
    P.make ~name:"signal may do nothing"
      ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
      ~programs:
        [
          [
            P.call "Acquire" [ P.Aobj "m" ];
            P.call "Wait" [ P.Aobj "m"; P.Aobj "c" ];
            P.call "Release" [ P.Aobj "m" ];
          ];
          [ P.call "Signal" [ P.Aobj "c" ] ];
        ]
      ()
  in
  ignore
    (violated `Deadlock "weak signal"
       (C.run Threads_interface.final scen_strict))

let test_max_states_guard () =
  Alcotest.(check bool) "bound enforced" true
    (try
       ignore (C.run ~max_states:2 Threads_interface.final (S.mutex_contention 3));
       false
     with Failure _ -> true)

let suite =
  ( "checker",
    [
      Alcotest.test_case "mutex scenarios conform" `Quick test_mutex_ok;
      Alcotest.test_case "state counts grow" `Quick test_state_counts_grow;
      Alcotest.test_case "wait/broadcast conforms" `Quick
        test_wait_broadcast_ok;
      Alcotest.test_case "P/V conforms" `Quick test_pv_ok;
      Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      Alcotest.test_case "deadlock allowance" `Quick test_allow_deadlock;
      Alcotest.test_case "REQUIRES detected" `Quick test_requires_detected;
      Alcotest.test_case "incident 1 (missing guard)" `Quick test_incident_1;
      Alcotest.test_case "incident 3 (nelson)" `Quick test_incident_3;
      Alcotest.test_case "signal non-determinism explored" `Quick
        test_signal_nondeterminism_explored;
      Alcotest.test_case "state bound guard" `Quick test_max_states_guard;
    ] )
