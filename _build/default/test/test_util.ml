(* Unit and property tests for threads_util. *)

open Threads_util

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  let xs = List.init 5 (fun _ -> Rng.next a) in
  let ys = List.init 5 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_pick_singleton () =
  let r = Rng.create 0 in
  Alcotest.(check int) "pick [x]" 9 (Rng.pick r [| 9 |]);
  Alcotest.(check int) "pick_list [x]" 9 (Rng.pick_list r [ 9 ])

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r in
      x >= 0.0 && x < 1.0)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"Rng.shuffle permutes" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let test_stats_known () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 2.5 s.Stats.p50;
  Alcotest.(check int) "n" 4 s.Stats.n

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "sd of constant" 0.0 (Stats.stddev [ 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "sd of +-1" 1.0 (Stats.stddev [ 0.0; 2.0 ])

let test_percentile_interpolation () =
  let sorted = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile 0.0 sorted);
  Alcotest.(check (float 1e-9)) "p100" 20.0 (Stats.percentile 100.0 sorted);
  Alcotest.(check (float 1e-9)) "p50" 15.0 (Stats.percentile 50.0 sorted)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:300
    QCheck.(pair (float_range 0.0 100.0) (list_of_size (Gen.int_range 1 20) (float_range (-50.) 50.)))
    (fun (p, xs) ->
      let sorted = Array.of_list (List.sort compare xs) in
      let v = Stats.percentile p sorted in
      v >= sorted.(0) && v <= sorted.(Array.length sorted - 1))

(* Str may not be linked; do it by hand instead. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_rendering () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "333"; "4" ];
  let out = Table.render t in
  Alcotest.(check bool) "title" true (contains out "== demo ==");
  Alcotest.(check bool) "cell" true (contains out "333");
  Alcotest.(check bool) "header" true (contains out "bb")

let test_table_mismatch () =
  let t = Table.create ~title:"x" [ "a" ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  Alcotest.(check string) "ratio" "2.50x" (Table.cell_ratio 2.5);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125);
  Alcotest.(check string) "float" "1.23" (Table.cell_float 1.234);
  Alcotest.(check string) "int" "7" (Table.cell_int 7)

let test_tid_set () =
  let s = Tid.Set.of_int_list [ 3; 1; 2 ] in
  Alcotest.(check string) "pp sorted" "{t1, t2, t3}" (Tid.Set.to_string s);
  Alcotest.(check string) "tid pp" "t5" (Tid.to_string 5)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "util",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng pick singleton" `Quick test_pick_singleton;
      q prop_int_bounds;
      q prop_float_unit;
      q prop_shuffle_permutation;
      Alcotest.test_case "stats known values" `Quick test_stats_known;
      Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
      Alcotest.test_case "percentile interpolation" `Quick
        test_percentile_interpolation;
      q prop_percentile_bounds;
      Alcotest.test_case "table rendering" `Quick test_table_rendering;
      Alcotest.test_case "table mismatch" `Quick test_table_mismatch;
      Alcotest.test_case "table cells" `Quick test_table_cells;
      Alcotest.test_case "tid sets" `Quick test_tid_set;
    ] )
