(* Tests of the real-parallelism backend (OCaml 5 domains).  Thread counts
   stay small; each test is a genuine cross-domain stress. *)

module S = Threads_multicore.Multicore.Sync

let test_mutex_stress () =
  let m = S.mutex () in
  let counter = ref 0 in
  let n = 4 and iters = 20_000 in
  let worker () =
    for _ = 1 to iters do
      S.with_lock m (fun () -> incr counter)
    done
  in
  let ts = List.init n (fun _ -> S.fork worker) in
  List.iter S.join ts;
  Alcotest.(check int) "no lost updates" (n * iters) !counter

let test_semaphore_mutual_exclusion () =
  let sem = S.semaphore () in
  let inside = ref 0 and bad = ref false in
  let worker () =
    for _ = 1 to 5_000 do
      S.p sem;
      incr inside;
      if !inside > 1 then bad := true;
      decr inside;
      S.v sem
    done
  in
  let ts = List.init 3 (fun _ -> S.fork worker) in
  List.iter S.join ts;
  Alcotest.(check bool) "binary semaphore excludes" false !bad

let test_producer_consumer () =
  let m = S.mutex () in
  let nonempty = S.condition () in
  let nonfull = S.condition () in
  let buf = Queue.create () in
  let cap = 4 and total = 30_000 in
  let eaten = ref 0 in
  let producer () =
    for i = 1 to total do
      S.with_lock m (fun () ->
          while Queue.length buf >= cap do
            S.wait m nonfull
          done;
          Queue.add i buf;
          S.signal nonempty)
    done
  in
  let consumer () =
    for _ = 1 to total do
      S.with_lock m (fun () ->
          while Queue.is_empty buf do
            S.wait m nonempty
          done;
          ignore (Queue.take buf);
          incr eaten;
          S.signal nonfull)
    done
  in
  let p = S.fork producer and c = S.fork consumer in
  S.join p;
  S.join c;
  Alcotest.(check int) "all consumed" total !eaten

let test_broadcast () =
  let m = S.mutex () in
  let go = S.condition () in
  let flag = ref false in
  let woken = Atomic.make 0 in
  let waiter () =
    S.with_lock m (fun () ->
        while not !flag do
          S.wait m go
        done);
    Atomic.incr woken
  in
  let ws = List.init 4 (fun _ -> S.fork waiter) in
  S.with_lock m (fun () -> flag := true);
  S.broadcast go;
  List.iter S.join ws;
  Alcotest.(check int) "all woken" 4 (Atomic.get woken)

let test_alert_wait () =
  let m = S.mutex () in
  let c = S.condition () in
  let alerted = Atomic.make false in
  let w =
    S.fork (fun () ->
        try S.with_lock m (fun () -> S.alert_wait m c)
        with Threads_multicore.Multicore.Alerted -> Atomic.set alerted true)
  in
  S.alert w;
  S.join w;
  Alcotest.(check bool) "alert unblocks AlertWait" true (Atomic.get alerted)

let test_alert_p () =
  let sem = S.semaphore () in
  S.p sem;
  let alerted = Atomic.make false in
  let w =
    S.fork (fun () ->
        try S.alert_p sem
        with Threads_multicore.Multicore.Alerted -> Atomic.set alerted true)
  in
  S.alert w;
  S.join w;
  Alcotest.(check bool) "alert unblocks AlertP" true (Atomic.get alerted)

let test_test_alert () =
  let probe = Atomic.make (false, false, false) in
  let w =
    S.fork (fun () ->
        (* wait until the alert has certainly been posted *)
        let rec spin () = if not (S.test_alert ()) then spin () in
        spin ();
        (* consumed: a second poll is false *)
        Atomic.set probe (true, S.test_alert (), false))
  in
  S.alert w;
  S.join w;
  let seen, second, _ = Atomic.get probe in
  Alcotest.(check bool) "alert seen" true seen;
  Alcotest.(check bool) "alert consumed" false second

let test_signal_wakes_enough () =
  (* one signal per item: no waiter may be left behind *)
  let m = S.mutex () in
  let c = S.condition () in
  let tickets = ref 0 in
  let waiter () =
    S.with_lock m (fun () ->
        while !tickets = 0 do
          S.wait m c
        done;
        decr tickets)
  in
  let ws = List.init 3 (fun _ -> S.fork waiter) in
  for _ = 1 to 3 do
    S.with_lock m (fun () ->
        incr tickets;
        S.signal c)
  done;
  (* signals may have raced ahead of the waits; broadcast as a sweep *)
  let rec drain () =
    let left = S.with_lock m (fun () -> !tickets) in
    if left > 0 then begin
      S.broadcast c;
      drain ()
    end
  in
  drain ();
  List.iter S.join ws;
  Alcotest.(check int) "all tickets taken" 0 !tickets

let suite =
  ( "multicore",
    [
      Alcotest.test_case "mutex stress" `Slow test_mutex_stress;
      Alcotest.test_case "semaphore exclusion" `Slow
        test_semaphore_mutual_exclusion;
      Alcotest.test_case "producer/consumer" `Slow test_producer_consumer;
      Alcotest.test_case "broadcast" `Quick test_broadcast;
      Alcotest.test_case "alert_wait" `Quick test_alert_wait;
      Alcotest.test_case "alert_p" `Quick test_alert_p;
      Alcotest.test_case "test_alert" `Quick test_test_alert;
      Alcotest.test_case "signal wakes enough" `Quick test_signal_wakes_enough;
    ] )
