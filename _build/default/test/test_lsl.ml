(* The Larch Shared Language tier: the Set trait is well-sorted and every
   axiom holds of the Value model the interface tier computes with. *)

open Spec_core
module Tid = Threads_util.Tid

let test_well_sorted () =
  Alcotest.(check (list string)) "set trait is well-sorted" []
    (Lsl.sort_check Lsl.set_trait)

let test_sort_errors_detected () =
  let bad =
    {
      Lsl.tr_name = "bad";
      tr_ops = Lsl.set_trait.Lsl.tr_ops;
      tr_eqs =
        [
          (* member applied backwards: member(set, elem) *)
          {
            Lsl.eq_name = "backwards";
            left = Lsl.App ("member", [ Lsl.Var ("s", Lsl.L_set);
                                        Lsl.Var ("e", Lsl.L_elem) ]);
            right = Lsl.App ("true", []);
          };
          (* unknown operator *)
          {
            Lsl.eq_name = "unknown";
            left = Lsl.App ("frob", []);
            right = Lsl.App ("true", []);
          };
          (* sides of different sorts *)
          {
            Lsl.eq_name = "cross-sort";
            left = Lsl.App ("empty", []);
            right = Lsl.App ("true", []);
          };
        ];
    }
  in
  Alcotest.(check int) "three violations" 3
    (List.length (Lsl.sort_check bad) |> min 3 |> max 3)

let test_sort_errors_nonempty () =
  let bad =
    {
      Lsl.tr_name = "bad2";
      tr_ops = Lsl.set_trait.Lsl.tr_ops;
      tr_eqs =
        [
          {
            Lsl.eq_name = "two-sorted-var";
            left = Lsl.Var ("x", Lsl.L_set);
            right =
              Lsl.App ("insert", [ Lsl.App ("empty", []); Lsl.Var ("x", Lsl.L_elem) ]);
          };
        ];
    }
  in
  Alcotest.(check bool) "variable sort clash flagged" true
    (Lsl.sort_check bad <> [])

let gen_value_of_sort =
  let open QCheck.Gen in
  function
  | Lsl.L_bool -> map (fun b -> Value.Bool b) bool
  | Lsl.L_elem -> map (fun n -> Value.Thread n) (int_range 0 5)
  | Lsl.L_set ->
    map
      (fun xs -> Value.Set (Tid.Set.of_int_list xs))
      (list_size (int_range 0 6) (int_range 0 5))

let gen_assignment eq =
  let open QCheck.Gen in
  let vars = Lsl.vars_of eq in
  let rec go = function
    | [] -> return []
    | (name, sort) :: rest ->
      gen_value_of_sort sort >>= fun v ->
      go rest >>= fun tail -> return ((name, v) :: tail)
  in
  go vars

(* One property per axiom, so a failure names the axiom. *)
let axiom_properties =
  List.map
    (fun eq ->
      QCheck.Test.make
        ~name:(Format.asprintf "axiom %s" eq.Lsl.eq_name)
        ~count:500
        (QCheck.make (gen_assignment eq))
        (fun assignment -> Lsl.holds Lsl.value_model assignment eq))
    Lsl.set_trait.Lsl.tr_eqs

(* A wrong axiom must be refuted: delete(insert(s,e),e) = s fails when
   e was already in s. *)
let test_wrong_axiom_refuted () =
  let wrong =
    {
      Lsl.eq_name = "delete-insert-naive";
      left =
        Lsl.App
          ("delete", [ Lsl.App ("insert", [ Lsl.Var ("s", Lsl.L_set);
                                            Lsl.Var ("e", Lsl.L_elem) ]);
                       Lsl.Var ("e", Lsl.L_elem) ]);
      right = Lsl.Var ("s", Lsl.L_set);
    }
  in
  let counterexample =
    [ ("s", Value.Set (Tid.Set.singleton 1)); ("e", Value.Thread 1) ]
  in
  Alcotest.(check bool) "refuted" false
    (Lsl.holds Lsl.value_model counterexample wrong)

let test_eval_errors () =
  Alcotest.(check bool) "unbound variable" true
    (try ignore (Lsl.eval Lsl.value_model [] (Lsl.Var ("x", Lsl.L_set))); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "model arity error" true
    (try ignore (Lsl.eval Lsl.value_model [] (Lsl.App ("insert", []))); false
     with Invalid_argument _ -> true)

let test_pp () =
  let eq = List.hd Lsl.set_trait.Lsl.tr_eqs in
  let s = Format.asprintf "%a" Lsl.pp_equation eq in
  Alcotest.(check bool) "prints name" true
    (String.length s > 0 && String.sub s 0 6 = "insert")

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "lsl",
    [
      Alcotest.test_case "set trait well-sorted" `Quick test_well_sorted;
      Alcotest.test_case "sort errors detected" `Quick test_sort_errors_detected;
      Alcotest.test_case "variable sort clash" `Quick test_sort_errors_nonempty;
      Alcotest.test_case "wrong axiom refuted" `Quick test_wrong_axiom_refuted;
      Alcotest.test_case "eval errors" `Quick test_eval_errors;
      Alcotest.test_case "pretty-printing" `Quick test_pp;
    ]
    @ List.map q axiom_properties )
