(* Tests for the executable spec semantics: outcome enumeration and
   transition checking. *)

open Spec_core
module Tid = Threads_util.Tid

let iface = Threads_interface.final
let set_of xs = Value.Set (Tid.Set.of_int_list xs)

let proc name = Proc.find_proc iface name
let action_of p = List.hd (Proc.actions p)
let nth_action p n = List.nth (Proc.actions p) n

let obj name sort = Spec_obj.create name sort

let outcomes_of ?(self = 1) pname args st =
  let p = proc pname in
  let bindings = Semantics.bindings_of_args iface p args in
  Semantics.outcomes iface p (action_of p) ~self ~bindings st

let test_acquire () =
  let m = obj "m" Sort.Thread in
  let st = State.add m Value.Nil State.empty in
  (match outcomes_of "Acquire" [ `Obj m ] st with
  | [ o ] ->
    Alcotest.(check bool) "m_post = SELF" true
      (Value.equal (State.get o.Semantics.o_post m) (Value.Thread 1))
  | outs -> Alcotest.fail (Printf.sprintf "expected 1 outcome, got %d" (List.length outs)));
  (* blocked when held *)
  let held = State.set st m (Value.Thread 2) in
  Alcotest.(check int) "blocked" 0
    (List.length (outcomes_of "Acquire" [ `Obj m ] held))

let test_release () =
  let m = obj "m" Sort.Thread in
  let st = State.add m (Value.Thread 1) State.empty in
  (match outcomes_of "Release" [ `Obj m ] st with
  | [ o ] ->
    Alcotest.(check bool) "m_post = NIL" true
      (Value.equal (State.get o.Semantics.o_post m) Value.Nil)
  | _ -> Alcotest.fail "expected exactly 1 outcome")

let test_requires () =
  let m = obj "m" Sort.Thread in
  let st = State.add m (Value.Thread 2) State.empty in
  let p = proc "Release" in
  let bindings = Semantics.bindings_of_args iface p [ `Obj m ] in
  Alcotest.(check bool) "requires m=SELF false for t1" false
    (Semantics.requires_holds p ~self:1 ~bindings st);
  Alcotest.(check bool) "requires m=SELF true for t2" true
    (Semantics.requires_holds p ~self:2 ~bindings st)

let test_signal_outcomes () =
  let c = obj "c" Sort.Thread_set in
  let st = State.add c (set_of [ 2; 3 ]) State.empty in
  let outs = outcomes_of "Signal" [ `Obj c ] st in
  let posts =
    List.map (fun o -> Value.to_string (State.get o.Semantics.o_post c)) outs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "signal finitized outcomes"
    (List.sort compare [ "{}"; "{t2, t3}"; "{t2}"; "{t3}" ])
    posts

let test_broadcast_outcome () =
  let c = obj "c" Sort.Thread_set in
  let st = State.add c (set_of [ 2; 3 ]) State.empty in
  match outcomes_of "Broadcast" [ `Obj c ] st with
  | [ o ] ->
    Alcotest.(check bool) "c_post = {}" true
      (Value.equal (State.get o.Semantics.o_post c) (set_of []))
  | outs ->
    Alcotest.fail (Printf.sprintf "expected 1 outcome, got %d" (List.length outs))

let test_p_v () =
  let s = obj "s" Sort.Semaphore in
  let st = State.add s (Value.Sem Value.Available) State.empty in
  (match outcomes_of "P" [ `Obj s ] st with
  | [ o ] ->
    Alcotest.(check bool) "P takes" true
      (Value.equal (State.get o.Semantics.o_post s) (Value.Sem Value.Unavailable))
  | _ -> Alcotest.fail "P should have 1 outcome");
  let taken = State.set st s (Value.Sem Value.Unavailable) in
  Alcotest.(check int) "P blocks" 0 (List.length (outcomes_of "P" [ `Obj s ] taken));
  (match outcomes_of "V" [ `Obj s ] taken with
  | [ o ] ->
    Alcotest.(check bool) "V releases" true
      (Value.equal (State.get o.Semantics.o_post s) (Value.Sem Value.Available))
  | _ -> Alcotest.fail "V should have 1 outcome")

let test_alert_by_value () =
  let st = State.empty in
  match outcomes_of ~self:1 "Alert" [ `Val (Value.Thread 5) ] st with
  | [ o ] ->
    Alcotest.(check bool) "alerts gains t5" true
      (Tid.Set.mem 5 (State.alerts o.Semantics.o_post))
  | _ -> Alcotest.fail "Alert should have 1 outcome"

let test_test_alert_result () =
  let st = State.set_alerts State.empty (Tid.Set.singleton 1) in
  (match outcomes_of ~self:1 "TestAlert" [] st with
  | [ o ] ->
    Alcotest.(check (option bool)) "b = true"
      (Some true)
      (Option.map Value.as_bool o.Semantics.o_result);
    Alcotest.(check bool) "alerts cleared" true
      (Tid.Set.is_empty (State.alerts o.Semantics.o_post))
  | outs ->
    Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length outs)));
  match outcomes_of ~self:2 "TestAlert" [] st with
  | [ o ] ->
    Alcotest.(check (option bool)) "b = false for t2"
      (Some false)
      (Option.map Value.as_bool o.Semantics.o_result)
  | _ -> Alcotest.fail "expected 1 outcome"

let test_alert_p_nondeterminism () =
  let s = obj "s" Sort.Semaphore in
  let st =
    State.add s (Value.Sem Value.Available) State.empty
    |> fun st -> State.set_alerts st (Tid.Set.singleton 1)
  in
  let outs = outcomes_of ~self:1 "AlertP" [ `Obj s ] st in
  let kinds =
    List.map (fun o -> o.Semantics.o_outcome) outs |> List.sort_uniq compare
  in
  Alcotest.(check int) "both RETURNS and RAISES possible" 2 (List.length kinds)

let test_wait_composition () =
  let m = obj "m" Sort.Thread in
  let c = obj "c" Sort.Thread_set in
  let st =
    State.empty |> State.add m (Value.Thread 1) |> State.add c (set_of [])
  in
  let p = proc "Wait" in
  let bindings = Semantics.bindings_of_args iface p [ `Obj m; `Obj c ] in
  (* Enqueue *)
  (match Semantics.outcomes iface p (nth_action p 0) ~self:1 ~bindings st with
  | [ o ] ->
    Alcotest.(check bool) "enqueue effect" true
      (Value.equal (State.get o.Semantics.o_post m) Value.Nil
      && Value.equal (State.get o.Semantics.o_post c) (set_of [ 1 ]))
  | _ -> Alcotest.fail "Enqueue should be deterministic");
  (* Resume blocked while SELF in c *)
  let mid =
    State.empty |> State.add m Value.Nil |> State.add c (set_of [ 1 ])
  in
  Alcotest.(check int) "resume blocked" 0
    (List.length
       (Semantics.outcomes iface p (nth_action p 1) ~self:1 ~bindings mid));
  (* Resume fires after removal *)
  let out = State.set mid c (set_of []) in
  match Semantics.outcomes iface p (nth_action p 1) ~self:1 ~bindings out with
  | [ o ] ->
    Alcotest.(check bool) "resume takes mutex" true
      (Value.equal (State.get o.Semantics.o_post m) (Value.Thread 1))
  | _ -> Alcotest.fail "Resume should fire"

let test_bindings_errors () =
  let m = obj "m" Sort.Thread in
  let p = proc "Acquire" in
  Alcotest.(check bool) "arity" true
    (try ignore (Semantics.bindings_of_args iface p []); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "VAR needs obj" true
    (try ignore (Semantics.bindings_of_args iface p [ `Val (Value.Thread 1) ]); false
     with Invalid_argument _ -> true);
  let c = obj "c" Sort.Thread_set in
  Alcotest.(check bool) "sort mismatch" true
    (try ignore (Semantics.bindings_of_args iface p [ `Obj c ]); false
     with Invalid_argument _ -> true);
  ignore m

let test_check_transition () =
  let m = obj "m" Sort.Thread in
  let pre = State.add m Value.Nil State.empty in
  let p = proc "Acquire" in
  let bindings = Semantics.bindings_of_args iface p [ `Obj m ] in
  let good = State.set pre m (Value.Thread 1) in
  (match
     Semantics.check_transition iface p (action_of p) ~self:1 ~bindings ~pre
       ~post:good ~outcome:Proc.Returns ~result:None
   with
  | Ok 0 -> ()
  | Ok i -> Alcotest.fail (Printf.sprintf "wrong case %d" i)
  | Error e -> Alcotest.fail e);
  (* wrong thread claims the mutex *)
  let bad = State.set pre m (Value.Thread 9) in
  (match
     Semantics.check_transition iface p (action_of p) ~self:1 ~bindings ~pre
       ~post:bad ~outcome:Proc.Returns ~result:None
   with
  | Ok _ -> Alcotest.fail "should reject m_post <> SELF"
  | Error _ -> ());
  (* frame violation: touching an object outside MODIFIES *)
  let c = obj "c" Sort.Thread_set in
  let pre2 = State.add c (set_of []) pre in
  let post2 =
    State.set (State.set pre2 m (Value.Thread 1)) c (set_of [ 7 ])
  in
  match
    Semantics.check_transition iface p (action_of p) ~self:1 ~bindings
      ~pre:pre2 ~post:post2 ~outcome:Proc.Returns ~result:None
  with
  | Ok _ -> Alcotest.fail "should reject frame violation"
  | Error msg ->
    Alcotest.(check bool) "mentions MODIFIES" true
      (String.split_on_char ' ' msg |> List.exists (fun w -> w = "MODIFIES"))

(* Every enumerated outcome must satisfy the clauses it was derived from —
   the two tiers police each other. *)
let prop_outcomes_satisfy_clauses =
  QCheck.Test.make ~name:"outcomes are self-consistent" ~count:200
    QCheck.(triple (int_range 1 3) (int_range 0 2) (list_of_size (Gen.int_range 0 3) (int_range 1 3)))
    (fun (self, holder, members) ->
      let m = obj "m" Sort.Thread in
      let c = obj "c" Sort.Thread_set in
      let st =
        State.empty
        |> State.add m (if holder = 0 then Value.Nil else Value.Thread holder)
        |> State.add c (set_of members)
      in
      List.for_all
        (fun pname ->
          let p = proc pname in
          let args =
            List.map
              (fun (f : Proc.formal) ->
                if f.f_type = "Mutex" then `Obj m else `Obj c)
              p.Proc.p_formals
          in
          let bindings = Semantics.bindings_of_args iface p args in
          List.for_all
            (fun a ->
              List.for_all
                (fun (o : Semantics.outcome) ->
                  match
                    Semantics.check_transition iface p a ~self ~bindings
                      ~pre:st ~post:o.o_post ~outcome:o.o_outcome
                      ~result:o.o_result
                  with
                  | Ok _ -> true
                  | Error _ -> false)
                (Semantics.outcomes iface p a ~self ~bindings st))
            (Proc.actions p))
        [ "Acquire"; "Release"; "Signal"; "Broadcast"; "Wait" ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "semantics",
    [
      Alcotest.test_case "Acquire" `Quick test_acquire;
      Alcotest.test_case "Release" `Quick test_release;
      Alcotest.test_case "REQUIRES" `Quick test_requires;
      Alcotest.test_case "Signal outcomes" `Quick test_signal_outcomes;
      Alcotest.test_case "Broadcast outcome" `Quick test_broadcast_outcome;
      Alcotest.test_case "P/V" `Quick test_p_v;
      Alcotest.test_case "Alert by value" `Quick test_alert_by_value;
      Alcotest.test_case "TestAlert result" `Quick test_test_alert_result;
      Alcotest.test_case "AlertP non-determinism" `Quick
        test_alert_p_nondeterminism;
      Alcotest.test_case "Wait composition" `Quick test_wait_composition;
      Alcotest.test_case "bindings errors" `Quick test_bindings_errors;
      Alcotest.test_case "check_transition" `Quick test_check_transition;
      q prop_outcomes_satisfy_clauses;
    ] )

(* --- historical variants at the semantics level --- *)

let variant_action variant pname aname =
  let p = Proc.find_proc variant pname in
  List.find (fun (a : Proc.action) -> a.a_name = aname) (Proc.actions p)

let test_missing_guard_enables_raise_while_held () =
  let m = obj "m" Sort.Thread in
  let c = obj "c" Sort.Thread_set in
  (* t2 holds the mutex; t1 is alerted and enqueued *)
  let st =
    State.empty
    |> State.add m (Value.Thread 2)
    |> State.add c (set_of [ 1 ])
    |> fun st -> State.set_alerts st (Tid.Set.singleton 1)
  in
  let p_final = Proc.find_proc Threads_interface.final "AlertWait" in
  let bindings =
    Semantics.bindings_of_args Threads_interface.final p_final
      [ `Obj m; `Obj c ]
  in
  let enabled variant =
    let a = variant_action variant "AlertWait" "AlertResume" in
    Semantics.enabled a ~self:1 ~bindings st
  in
  Alcotest.(check (list int)) "final: blocked while held" []
    (enabled Threads_interface.final);
  Alcotest.(check (list int)) "buggy: raise case enabled" [ 1 ]
    (enabled Threads_interface.missing_mutex_guard)

let test_nelson_keeps_self_in_c () =
  let m = obj "m" Sort.Thread in
  let c = obj "c" Sort.Thread_set in
  let st =
    State.empty |> State.add m Value.Nil |> State.add c (set_of [ 1 ])
    |> fun st -> State.set_alerts st (Tid.Set.singleton 1)
  in
  let outcomes variant =
    let p = Proc.find_proc variant "AlertWait" in
    let bindings =
      Semantics.bindings_of_args variant p [ `Obj m; `Obj c ]
    in
    let a = variant_action variant "AlertWait" "AlertResume" in
    List.filter
      (fun (o : Semantics.outcome) -> o.o_outcome = Proc.Raises "Alerted")
      (Semantics.outcomes variant p a ~self:1 ~bindings st)
  in
  (* final: the raise removes self from c *)
  List.iter
    (fun (o : Semantics.outcome) ->
      Alcotest.(check bool) "final removes self" false
        (Value.member (Value.Thread 1) (State.get o.Semantics.o_post c)))
    (outcomes Threads_interface.final);
  (* nelson: the raise must keep self in c *)
  let nelson_raises = outcomes Threads_interface.nelson_bug in
  Alcotest.(check bool) "nelson has raise outcomes" true (nelson_raises <> []);
  List.iter
    (fun (o : Semantics.outcome) ->
      Alcotest.(check bool) "nelson keeps self" true
        (Value.member (Value.Thread 1) (State.get o.Semantics.o_post c)))
    nelson_raises

let test_must_raise_disables_normal_return () =
  let s = obj "s" Sort.Semaphore in
  let st =
    State.add s (Value.Sem Value.Available) State.empty |> fun st ->
    State.set_alerts st (Tid.Set.singleton 1)
  in
  let kinds variant =
    let p = Proc.find_proc variant "AlertP" in
    let bindings = Semantics.bindings_of_args variant p [ `Obj s ] in
    Semantics.outcomes variant p
      (List.hd (Proc.actions p))
      ~self:1 ~bindings st
    |> List.map (fun (o : Semantics.outcome) -> o.o_outcome)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "final: both kinds" 2
    (List.length (kinds Threads_interface.final));
  Alcotest.(check (list bool)) "must-raise: only the exception"
    [ true ]
    (List.map
       (function Proc.Raises _ -> true | Proc.Returns -> false)
       (kinds Threads_interface.must_raise))

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "variant: raise-while-held enabled only when buggy"
          `Quick test_missing_guard_enables_raise_while_held;
        Alcotest.test_case "variant: nelson keeps self in c" `Quick
          test_nelson_keeps_self_in_c;
        Alcotest.test_case "variant: must-raise kills the normal return"
          `Quick test_must_raise_disables_normal_return;
      ] )
