(* The experiment registry and the shared scenarios. *)

let () = Threads_harness.Registry.init ()

let test_registry_complete () =
  let ids =
    List.map (fun (e : Threads_harness.Exp.t) -> e.id) (Threads_harness.Exp.all ())
  in
  Alcotest.(check (list string)) "all ten experiments"
    [ "E1"; "E10"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9" ]
    ids

let test_find_case_insensitive () =
  Alcotest.(check bool) "finds e1" true
    (Threads_harness.Exp.find "e1" <> None);
  Alcotest.(check bool) "unknown" true (Threads_harness.Exp.find "E99" = None)

let test_every_experiment_has_claim () =
  List.iter
    (fun (e : Threads_harness.Exp.t) ->
      Alcotest.(check bool) (e.id ^ " cites the paper") true
        (String.length e.claim > 40))
    (Threads_harness.Exp.all ())

let test_scenarios_clean_under_final () =
  let check name scen =
    match
      (Threads_model.Checker.run Spec_core.Threads_interface.final scen)
        .Threads_model.Checker.violation
    with
    | None -> ()
    | Some v -> Alcotest.fail (Printf.sprintf "%s: %s" name v.message)
  in
  check "mutex x3" (Threads_harness.Scenarios.mutex_contention 3);
  check "wait/signal x2" (Threads_harness.Scenarios.wait_signal 2);
  check "alert-wait excl" (Threads_harness.Scenarios.alert_wait_mutual_exclusion ());
  check "nelson" (Threads_harness.Scenarios.nelson ());
  check "pv" (Threads_harness.Scenarios.semaphore_pingpong ())

let test_e5_engine () =
  (* The delay-bounded engine reliably produces the stranding witness. *)
  let err, stats = Threads_harness.E5.exhaustive_naive () in
  Alcotest.(check (option string)) "stranding found" (Some "stranded waiter found") err;
  Alcotest.(check bool) "cheaply" true
    (stats.Firefly.Explore.terminal_runs < 5_000)

let suite =
  ( "harness",
    [
      Alcotest.test_case "registry complete" `Quick test_registry_complete;
      Alcotest.test_case "find is case-insensitive" `Quick
        test_find_case_insensitive;
      Alcotest.test_case "claims cite the paper" `Quick
        test_every_experiment_has_claim;
      Alcotest.test_case "scenarios clean under final spec" `Quick
        test_scenarios_clean_under_final;
      Alcotest.test_case "E5 bounded-search engine" `Quick test_e5_engine;
    ] )
