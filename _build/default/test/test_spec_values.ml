(* Tests for the specification value/term/formula/state tier. *)

open Spec_core
module Tid = Threads_util.Tid

let v = Alcotest.testable Value.pp Value.equal

let test_sorts () =
  Alcotest.(check bool) "nil : Thread" true (Value.has_sort Value.Nil Sort.Thread);
  Alcotest.(check bool) "t1 : Thread" true
    (Value.has_sort (Value.Thread 1) Sort.Thread);
  Alcotest.(check bool) "bool not Thread" false
    (Value.has_sort (Value.Bool true) Sort.Thread)

let test_initials () =
  Alcotest.check v "mutex init" Value.Nil (Value.initial Sort.Thread);
  Alcotest.check v "cond init" (Value.Set Tid.Set.empty)
    (Value.initial Sort.Thread_set);
  Alcotest.check v "sem init" (Value.Sem Value.Available)
    (Value.initial Sort.Semaphore)

let set_of xs = Value.Set (Tid.Set.of_int_list xs)

let test_set_ops () =
  Alcotest.check v "insert" (set_of [ 1; 2 ])
    (Value.insert (set_of [ 1 ]) (Value.Thread 2));
  Alcotest.check v "insert idempotent" (set_of [ 1 ])
    (Value.insert (set_of [ 1 ]) (Value.Thread 1));
  Alcotest.check v "delete" (set_of [ 1 ])
    (Value.delete (set_of [ 1; 2 ]) (Value.Thread 2));
  Alcotest.check v "delete absent" (set_of [ 1 ])
    (Value.delete (set_of [ 1 ]) (Value.Thread 9));
  Alcotest.(check bool) "member" true (Value.member (Value.Thread 1) (set_of [ 1 ]));
  Alcotest.(check bool) "subset strict" true
    (Value.subset (set_of [ 1 ]) (set_of [ 1; 2 ]));
  Alcotest.(check bool) "subset refl" true
    (Value.subset (set_of [ 1 ]) (set_of [ 1 ]));
  Alcotest.(check bool) "not subset" false
    (Value.subset (set_of [ 3 ]) (set_of [ 1; 2 ]))

let test_sort_errors () =
  Alcotest.(check bool) "insert into thread fails" true
    (try ignore (Value.insert Value.Nil (Value.Thread 1)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "member of nil set arg" true
    (try ignore (Value.member (Value.Bool true) (set_of [])); false
     with Invalid_argument _ -> true)

let prop_set_ops_model =
  (* insert/delete/member agree with a sorted-list model *)
  QCheck.Test.make ~name:"Value set ops vs model" ~count:300
    QCheck.(pair (list (int_range 0 10)) (int_range 0 10))
    (fun (xs, x) ->
      let s = set_of xs in
      let model = List.sort_uniq compare xs in
      Value.member (Value.Thread x) s = List.mem x model
      && Value.equal
           (Value.insert s (Value.Thread x))
           (set_of (x :: model))
      && Value.equal
           (Value.delete s (Value.Thread x))
           (set_of (List.filter (fun y -> y <> x) model)))

let fresh name sort = Spec_obj.create name sort

let test_state_basics () =
  let m = fresh "m" Sort.Thread in
  let st = State.add m Value.Nil State.empty in
  Alcotest.check v "get" Value.Nil (State.get st m);
  let st2 = State.set st m (Value.Thread 3) in
  Alcotest.check v "set" (Value.Thread 3) (State.get st2 m);
  Alcotest.check v "persistence" Value.Nil (State.get st m);
  Alcotest.(check bool) "alerts empty" true
    (Tid.Set.is_empty (State.alerts st))

let test_state_sort_check () =
  let m = fresh "m" Sort.Thread in
  Alcotest.(check bool) "bad add" true
    (try ignore (State.add m (Value.Bool true) State.empty); false
     with Invalid_argument _ -> true);
  let st = State.add m Value.Nil State.empty in
  Alcotest.(check bool) "bad set" true
    (try ignore (State.set st m (set_of [])); false
     with Invalid_argument _ -> true);
  let c = fresh "c" Sort.Thread_set in
  Alcotest.(check bool) "set unbound" true
    (try ignore (State.set st c (set_of [])); false
     with Invalid_argument _ -> true)

let test_state_equality_hash () =
  let m = fresh "m" Sort.Thread in
  let a = State.add m (Value.Thread 1) State.empty in
  let b = State.add m (Value.Thread 1) State.empty in
  let c = State.add m (Value.Thread 2) State.empty in
  Alcotest.(check bool) "equal" true (State.equal a b);
  Alcotest.(check bool) "hash equal" true (State.hash a = State.hash b);
  Alcotest.(check bool) "not equal" false (State.equal a c)

(* ---- terms and formulas ---- *)

let env_for ?(self = 1) ?post ?result bindings pre =
  Term.env ~self ~bindings ~pre ?post ?result ()

let test_term_eval () =
  let m = fresh "m" Sort.Thread in
  let pre = State.add m Value.Nil State.empty in
  let post = State.set pre m (Value.Thread 1) in
  let env = env_for [ ("m", Term.Obj m) ] pre ~post in
  Alcotest.check v "SELF" (Value.Thread 1) (Term.eval env Term.Self);
  Alcotest.check v "NIL" Value.Nil (Term.eval env Term.Nil_const);
  Alcotest.check v "pre ref" Value.Nil (Term.eval env (Term.Ref ("m", Term.Pre)));
  Alcotest.check v "post ref" (Value.Thread 1)
    (Term.eval env (Term.Ref ("m", Term.Post)));
  Alcotest.check v "empty set" (set_of []) (Term.eval env Term.Empty_set)

let test_term_alerts_global () =
  let pre = State.set_alerts State.empty (Tid.Set.singleton 4) in
  let env = env_for [] pre in
  Alcotest.check v "alerts resolves" (set_of [ 4 ])
    (Term.eval env (Term.Ref ("alerts", Term.Pre)))

let test_term_errors () =
  let pre = State.empty in
  let env = env_for [] pre in
  Alcotest.(check bool) "unbound" true
    (try ignore (Term.eval env (Term.Ref ("zz", Term.Pre))); false
     with Term.Eval_error _ -> true);
  Alcotest.(check bool) "post in one-state" true
    (try ignore (Term.eval env (Term.Ref ("alerts", Term.Post))); false
     with Term.Eval_error _ -> true);
  Alcotest.(check bool) "result missing" true
    (try ignore (Term.eval env Term.Result); false
     with Term.Eval_error _ -> true)

let test_formula_eval () =
  let m = fresh "m" Sort.Thread in
  let c = fresh "c" Sort.Thread_set in
  let pre =
    State.empty |> State.add m Value.Nil |> State.add c (set_of [ 2 ])
  in
  let post = State.set pre m (Value.Thread 1) in
  let env =
    env_for [ ("m", Term.Obj m); ("c", Term.Obj c) ] pre ~post
  in
  let f = Parser.formula_of_string in
  Alcotest.(check bool) "when true" true (Formula.eval env (f "m = NIL"));
  Alcotest.(check bool) "post eq" true (Formula.eval env (f "m_post = SELF"));
  Alcotest.(check bool) "member" true
    (Formula.eval env (f "~(SELF IN c)"));
  Alcotest.(check bool) "unchanged c" true
    (Formula.eval env (f "UNCHANGED [c]"));
  Alcotest.(check bool) "unchanged m false" false
    (Formula.eval env (f "UNCHANGED [m]"));
  Alcotest.(check bool) "subset" true
    (Formula.eval env (f "c_post SUBSET c"));
  Alcotest.(check bool) "implication" true
    (Formula.eval env (f "FALSE => m = SELF"))

let test_formula_iff_truth () =
  let pre = State.set_alerts State.empty (Tid.Set.singleton 1) in
  let post = State.set_alerts pre Tid.Set.empty in
  let env = env_for [] pre ~post ~result:(Value.Bool true) in
  let f =
    Parser.formula_of_string ~ret:"b"
      "(b = (SELF IN alerts)) & (alerts_post = delete(alerts, SELF))"
  in
  Alcotest.(check bool) "TestAlert ensures" true (Formula.eval env f);
  let env_false = env_for [] pre ~post ~result:(Value.Bool false) in
  Alcotest.(check bool) "wrong result" false (Formula.eval env_false f)

let test_formula_names () =
  let f =
    Parser.formula_of_string "(m_post = SELF) & (c_post = delete(c, SELF))"
  in
  Alcotest.(check (list string)) "names" [ "c"; "m" ] (Formula.names f);
  Alcotest.(check (list string)) "post names" [ "c"; "m" ]
    (Formula.post_names f);
  let g = Parser.formula_of_string "m = NIL" in
  Alcotest.(check (list string)) "one-state post names" [] (Formula.post_names g)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "spec-values",
    [
      Alcotest.test_case "sorts" `Quick test_sorts;
      Alcotest.test_case "INITIALLY values" `Quick test_initials;
      Alcotest.test_case "set operations" `Quick test_set_ops;
      Alcotest.test_case "sort errors" `Quick test_sort_errors;
      q prop_set_ops_model;
      Alcotest.test_case "state basics" `Quick test_state_basics;
      Alcotest.test_case "state sort check" `Quick test_state_sort_check;
      Alcotest.test_case "state equality/hash" `Quick test_state_equality_hash;
      Alcotest.test_case "term eval" `Quick test_term_eval;
      Alcotest.test_case "alerts global" `Quick test_term_alerts_global;
      Alcotest.test_case "term errors" `Quick test_term_errors;
      Alcotest.test_case "formula eval" `Quick test_formula_eval;
      Alcotest.test_case "iff/truth (TestAlert)" `Quick test_formula_iff_truth;
      Alcotest.test_case "formula names" `Quick test_formula_names;
    ] )
