test/test_tqueue.ml: Alcotest List QCheck QCheck_alcotest Taos_threads Test
