test/test_harness.ml: Alcotest Firefly List Printf Spec_core String Threads_harness Threads_model
