test/test_semantics.ml: Alcotest Gen List Option Printf Proc QCheck QCheck_alcotest Semantics Sort Spec_core Spec_obj State String Threads_interface Threads_util Value
