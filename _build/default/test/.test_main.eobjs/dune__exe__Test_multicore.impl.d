test/test_multicore.ml: Alcotest Atomic List Queue Threads_multicore
