test/test_util.ml: Alcotest Array Gen List QCheck QCheck_alcotest Rng Stats String Table Threads_util Tid
