test/test_lsl.ml: Alcotest Format List Lsl QCheck QCheck_alcotest Spec_core String Threads_util Value
