test/test_backends.ml: Alcotest Firefly Format List Printexc Printf Queue Spec_core String Taos_threads Threads_model Threads_util
