test/test_conformance.ml: Alcotest Firefly List Spec_core Threads_interface Threads_model
