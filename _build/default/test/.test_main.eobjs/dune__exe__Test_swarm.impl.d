test/test_swarm.ml: Array Firefly Format List Printexc Printf QCheck QCheck_alcotest Spec_core String Taos_threads Threads_model Threads_util
