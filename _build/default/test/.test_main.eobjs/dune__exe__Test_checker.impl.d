test/test_checker.ml: Alcotest List Printf Proc Sort Spec_core Threads_harness Threads_interface Threads_model
