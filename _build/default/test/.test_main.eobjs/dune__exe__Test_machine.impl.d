test/test_machine.ml: Alcotest Firefly List Printf
