test/test_parser.ml: Alcotest Formula Lexer List Parser Printer Proc QCheck QCheck_alcotest Spec_core String Sys Term Threads_interface Value
