test/test_spec_values.ml: Alcotest Formula List Parser QCheck QCheck_alcotest Sort Spec_core Spec_obj State Term Threads_util Value
