test/test_races.ml: Alcotest Firefly List Printf Spec_core Taos_threads Threads_model Threads_util
