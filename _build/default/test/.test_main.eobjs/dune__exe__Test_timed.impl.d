test/test_timed.ml: Alcotest Firefly List Spec_core Taos_threads Threads_model Threads_util
