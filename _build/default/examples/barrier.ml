(* A cyclic barrier built from Mutex + Condition + Broadcast — the kind of
   higher-level synchronization the paper expects clients to build on the
   primitives ("the implementation of a higher level locking scheme might
   require that some threads wait until a lock is available").

   The generation counter is the textbook defence against the Mesa
   semantics: a woken thread re-checks which generation it belongs to, so
   a hint-style wakeup can never release it into the wrong phase.

     dune exec examples/barrier.exe *)

module Tid = Threads_util.Tid

module Barrier (S : Taos_threads.Sync_intf.SYNC) = struct
  type t = {
    m : S.mutex;
    all_here : S.condition;
    parties : int;
    mutable waiting : int;
    mutable generation : int;
  }

  let create parties =
    {
      m = S.mutex ();
      all_here = S.condition ();
      parties;
      waiting = 0;
      generation = 0;
    }

  (* Returns true for exactly one thread per generation (the "leader"). *)
  let await b =
    S.with_lock b.m (fun () ->
        let my_generation = b.generation in
        b.waiting <- b.waiting + 1;
        if b.waiting = b.parties then begin
          (* last one in: open the barrier for everyone *)
          b.generation <- b.generation + 1;
          b.waiting <- 0;
          S.broadcast b.all_here;
          true
        end
        else begin
          while b.generation = my_generation do
            S.wait b.m b.all_here
          done;
          false
        end)
end

let phased_computation (type t) (module S : Taos_threads.Sync_intf.SYNC
                                  with type thread = t) ~threads ~phases =
  let module B = Barrier (S) in
  let b = B.create threads in
  let log_m = S.mutex () in
  let trace = ref [] in
  let out_of_phase = ref 0 in
  let phase_of = Array.make threads 0 in
  let worker i () =
    for phase = 1 to phases do
      (* everyone must observe every peer in the same phase or later,
         never one behind: the barrier's guarantee *)
      S.with_lock log_m (fun () ->
          Array.iteri
            (fun j p -> if j <> i && p < phase - 1 then incr out_of_phase)
            phase_of;
          phase_of.(i) <- phase;
          trace := (i, phase) :: !trace);
      ignore (B.await b)
    done
  in
  let ts = List.init threads (fun i -> S.fork (worker i)) in
  List.iter S.join ts;
  (List.length !trace, !out_of_phase)

let () =
  (* deterministic, schedule-randomized, on the simulator *)
  let bad = ref 0 in
  for seed = 0 to 49 do
    ignore
      (Taos_threads.Api.run ~seed (fun sync ->
           let module S =
             (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
           in
           let entries, out_of_phase =
             phased_computation (module S) ~threads:4 ~phases:5
           in
           if entries <> 20 || out_of_phase > 0 then incr bad))
  done;
  Printf.printf "simulator: 50 seeds, 4 threads x 5 phases, %d violations\n"
    !bad;

  (* and with true parallelism *)
  let entries, out_of_phase =
    phased_computation
      (module Threads_multicore.Multicore.Sync)
      ~threads:4 ~phases:200
  in
  Printf.printf "multicore: %d phase entries, %d out-of-phase observations\n"
    entries out_of_phase
