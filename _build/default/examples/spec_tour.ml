(* A tour of the specification framework itself: parse the concrete
   syntax, pretty-print it back, evaluate clauses, enumerate the
   transitions the spec allows, and model-check a historical bug.

     dune exec examples/spec_tour.exe *)

open Spec_core
module Tid = Threads_util.Tid

let () =
  (* 1. The shipped interface text parses to the built-in AST. *)
  let iface = Parser.interface_of_string Threads_interface.source in
  assert (Proc.equal_interface iface Threads_interface.final);
  Printf.printf "parsed INTERFACE %s: %d types, %d procedures, well-formed: %b\n"
    iface.Proc.i_name
    (List.length iface.Proc.i_types)
    (List.length iface.Proc.i_procs)
    (Proc.well_formed iface = []);

  (* 2. Print one procedure back in the concrete syntax. *)
  let wait = Proc.find_proc iface "Wait" in
  Format.printf "@\n%a@\n@\n" (Printer.pp_proc iface) wait;

  (* 3. Evaluate clauses directly: build a state where t1 holds m and t2
     is enqueued on c, and ask questions of it. *)
  let m = Spec_obj.create "m" Sort.Thread in
  let c = Spec_obj.create "c" Sort.Thread_set in
  let st =
    State.empty
    |> State.add m (Value.Thread 1)
    |> State.add c (Value.Set (Tid.Set.singleton 2))
  in
  let bindings = [ ("m", Term.Obj m); ("c", Term.Obj c) ] in
  let resume = List.nth (Proc.actions wait) 1 in
  let enabled_for self =
    Semantics.enabled resume ~self ~bindings st <> []
  in
  Printf.printf "Resume enabled for t2 while t1 holds m: %b\n" (enabled_for 2);
  let st' = State.set st m Value.Nil in
  let enabled_for' self =
    Semantics.enabled resume ~self ~bindings st' <> []
  in
  Printf.printf "Resume enabled for t2 once m = NIL: %b (and t2 IN c blocks... %b)\n"
    (enabled_for' 2)
    (not (enabled_for' 2));
  (* t2 is still in c, so WHEN (m = NIL) & ~(SELF IN c) is false; a Signal
     must remove it first.  Enumerate what Signal may do: *)
  let signal = Proc.find_proc iface "Signal" in
  let outs =
    Semantics.outcomes iface signal
      (List.hd (Proc.actions signal))
      ~self:3
      ~bindings:[ ("c", Term.Obj c) ]
      st'
  in
  Printf.printf "Signal(c) with c = {t2} admits %d outcomes:\n"
    (List.length outs);
  List.iter
    (fun (o : Semantics.outcome) ->
      Format.printf "  c_post = %a@." Value.pp (State.get o.o_post c))
    outs;

  (* 4. Model-check Nelson's bug in one call. *)
  let module C = Threads_model.Checker in
  let scen =
    Threads_model.Program.make ~name:"nelson"
      ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
      ~programs:
        [
          [
            Threads_model.Program.call "Acquire" [ Aobj "m" ];
            Threads_model.Program.call "AlertWait" [ Aobj "m"; Aobj "c" ];
            Threads_model.Program.call "Release" [ Aobj "m" ];
          ];
          [ Threads_model.Program.call "Alert" [ Athread 0 ] ];
        ]
      ~invariant:
        (Threads_model.Program.no_stale_waiters ~c:"c" ~waits:[ (0, 1) ])
      ~allow_deadlock:true ()
  in
  Format.printf "@\nfinal spec:  %a@\n" C.pp_result
    (C.run Threads_interface.final scen);
  Format.printf "nelson bug:  %a@\n" C.pp_result
    (C.run Threads_interface.nelson_bug scen)
