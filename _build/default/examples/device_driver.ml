(* A device driver synchronizing with interrupt routines through a
   semaphore — the reason the Threads interface keeps P and V at all:
   "a thread waits for an interrupt routine action by calling P(sem), and
   the interrupt routine unblocks it by calling V(sem)".

   The device posts completions from interrupt context (threads marked
   ~interrupt:true cannot block: the machine faults them if they try).
   The driver thread Ps once per completion and hands data to a consumer
   through an ordinary mutex/condition pair — the two worlds composed.

     dune exec examples/device_driver.exe *)

module Ops = Firefly.Machine.Ops

let completions = 8

let () =
  let delivered = ref [] in
  let report =
    Firefly.Interleave.run ~seed:7
      ~strategy:(Firefly.Sched.prefer_interrupts (Firefly.Sched.random 7))
      (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let pkg = Taos_threads.Pkg.create () in
               let sem = Taos_threads.Semaphore.create pkg in
               Taos_threads.Semaphore.p sem;
               (* sem now unavailable: P blocks until the device Vs *)
               let m = Taos_threads.Mutex.create pkg in
               let ready = Taos_threads.Condition.create pkg in
               let inbox = Queue.create () in
               (* device registers: written by interrupt context, read by
                  the driver after P — the V/P pair orders the accesses *)
               let device_data = ref 0 in
               (* Command register: the driver starts one operation at a
                  time and Ps until its completion interrupt — the binary
                  semaphore is a completion handshake, so Vs never
                  coalesce. *)
               let command_pending = ref false in
               let driver () =
                 for _ = 1 to completions do
                   command_pending := true;
                   (* start the operation *)
                   Ops.tick 1;
                   Taos_threads.Semaphore.p sem;
                   (* completion interrupt arrived *)
                   let data = !device_data in
                   Taos_threads.Mutex.with_lock m (fun () ->
                       Queue.add data inbox;
                       Taos_threads.Condition.signal ready)
                 done
               in
               let consumer () =
                 for _ = 1 to completions do
                   Taos_threads.Mutex.with_lock m (fun () ->
                       while Queue.is_empty inbox do
                         Taos_threads.Condition.wait ready m
                       done;
                       delivered := Queue.take inbox :: !delivered)
                 done
               in
               let d = Ops.spawn driver in
               let c = Ops.spawn consumer in
               (* The device: completes each started operation with an
                  interrupt at an arbitrary later time.  Interrupt routines
                  only write registers and V. *)
               for i = 1 to completions do
                 while not !command_pending do
                   Ops.yield ()
                 done;
                 command_pending := false;
                 Ops.tick 20;
                 ignore
                   (Firefly.Machine.spawn_root machine ~interrupt:true
                      (fun () ->
                        device_data := i * 100;
                        Taos_threads.Semaphore.v sem))
               done;
               Ops.join d;
               Ops.join c)))
  in
  (match report.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed ->
    Printf.printf "driver completed: %d completions delivered: %s\n"
      (List.length !delivered)
      (String.concat ", " (List.rev_map string_of_int !delivered))
  | Firefly.Interleave.Deadlock _ -> print_endline "DEADLOCK (lost interrupt?)"
  | Firefly.Interleave.Step_limit -> print_endline "STEP LIMIT");

  (* The forbidden alternative: protecting the device registers with a
     mutex from interrupt context.  The machine faults the interrupt
     routine the moment it would have to block. *)
  let report =
    Firefly.Interleave.run ~seed:3 (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let pkg = Taos_threads.Pkg.create () in
               let m = Taos_threads.Mutex.create pkg in
               let worker () =
                 Taos_threads.Mutex.with_lock m (fun () -> Ops.tick 200)
               in
               let w = Ops.spawn worker in
               ignore
                 (Firefly.Machine.spawn_root machine ~interrupt:true
                    (fun () ->
                      Taos_threads.Mutex.with_lock m (fun () ->
                          (* never reached when the mutex is held *)
                          ())));
               Ops.join w)))
  in
  List.iter
    (fun (tid, e) ->
      Printf.printf "interrupt routine t%d faulted: %s\n" tid
        (Printexc.to_string e))
    (Firefly.Machine.failures report.Firefly.Interleave.machine)
