examples/readers_writers.ml: Firefly List Printf Taos_threads Threads_util
