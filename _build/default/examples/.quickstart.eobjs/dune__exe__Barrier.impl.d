examples/barrier.ml: Array List Printf Taos_threads Threads_multicore Threads_util
