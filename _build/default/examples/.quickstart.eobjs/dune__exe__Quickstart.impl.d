examples/quickstart.ml: Firefly List Printf Queue Spec_core Taos_threads Threads_model Threads_multicore Threads_util
