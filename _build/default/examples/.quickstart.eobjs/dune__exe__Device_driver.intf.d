examples/device_driver.mli:
