examples/barrier.mli:
