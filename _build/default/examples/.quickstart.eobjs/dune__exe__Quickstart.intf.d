examples/quickstart.mli:
