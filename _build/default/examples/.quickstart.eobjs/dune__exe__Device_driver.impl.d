examples/device_driver.ml: Firefly List Printexc Printf Queue String Taos_threads
