examples/spec_tour.mli:
