examples/timeout_alert.ml: Option Printf Taos_threads Threads_util
