examples/timeout_alert.mli:
