examples/spec_tour.ml: Format List Parser Printer Printf Proc Semantics Sort Spec_core Spec_obj State Term Threads_interface Threads_model Threads_util Value
