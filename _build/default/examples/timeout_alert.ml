(* Alerts as polite interrupts: implementing a timeout around a blocking
   operation, the paper's stated use case — "typically to implement things
   such as timeouts and aborts ... the decision to make this request
   happens at an abstraction level higher than that in which the thread is
   blocked".

   A worker blocks in AlertWait for a result that never comes; a watchdog
   at a higher abstraction level knows only the worker's thread id and
   alerts it.  The worker unwinds with Alerted, releasing the mutex on the
   way out (the LOCK ... END / with_lock sugar guarantees that).

     dune exec examples/timeout_alert.exe *)

module Tid = Threads_util.Tid

let scenario ~watchdog_fires sync =
  let module S =
    (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
  in
  let m = S.mutex () in
  let result_ready = S.condition () in
  let result = ref None in
  let outcome = ref `Pending in
  let worker =
    S.fork (fun () ->
        try
          S.with_lock m (fun () ->
              while !result = None do
                S.alert_wait m result_ready
              done;
              outcome := `Got (Option.get !result))
        with Taos_threads.Sync_intf.Alerted ->
          (* Cleanup runs with the mutex already released by with_lock. *)
          outcome := `Timed_out)
  in
  (if watchdog_fires then
     (* Watchdog: knows nothing about m or result_ready — only the thread. *)
     ignore (S.fork (fun () -> S.alert worker))
   else
     ignore
       (S.fork (fun () ->
            S.with_lock m (fun () ->
                result := Some 7;
                S.signal result_ready))));
  S.join worker;
  !outcome

let () =
  let timeouts = ref 0 and got = ref 0 and other = ref 0 in
  for seed = 0 to 199 do
    let r = ref `Pending in
    ignore
      (Taos_threads.Api.run ~seed (fun sync ->
           r := scenario ~watchdog_fires:true sync));
    match !r with
    | `Timed_out -> incr timeouts
    | `Got _ -> incr got
    | `Pending -> incr other
  done;
  Printf.printf "watchdog fires:   %d timed out, %d got results, %d stuck\n"
    !timeouts !got !other;
  let timeouts = ref 0 and got = ref 0 and other = ref 0 in
  for seed = 0 to 199 do
    let r = ref `Pending in
    ignore
      (Taos_threads.Api.run ~seed (fun sync ->
           r := scenario ~watchdog_fires:false sync));
    match !r with
    | `Timed_out -> incr timeouts
    | `Got n ->
      assert (n = 7);
      incr got
    | `Pending -> incr other
  done;
  Printf.printf "producer delivers: %d timed out, %d got results, %d stuck\n"
    !timeouts !got !other;
  (* TestAlert: polling for an alert without blocking. *)
  ignore
    (Taos_threads.Api.run ~seed:0 (fun sync ->
         let module S =
           (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
         in
         let w =
           S.fork (fun () ->
               (* poll until alerted, doing bounded work in between *)
               let polls = ref 0 in
               while not (S.test_alert ()) do
                 incr polls;
                 S.yield ()
               done;
               Printf.printf "poller: alert seen after %d polls\n" !polls)
         in
         S.alert w;
         S.join w))
