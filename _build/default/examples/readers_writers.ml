(* Readers/writer lock — the paper's own example of why Broadcast exists:
   "Broadcast is necessary (for correctness) if multiple threads should
   resume (for example, when releasing a 'writer' lock on a file might
   permit all 'readers' to resume)."

     dune exec examples/readers_writers.exe *)

module Tid = Threads_util.Tid

module Rw_lock (S : Taos_threads.Sync_intf.SYNC) = struct
  type t = {
    m : S.mutex;
    readable : S.condition;  (* no writer active *)
    writable : S.condition;  (* no reader or writer active *)
    mutable readers : int;
    mutable writer : bool;
  }

  let create () =
    {
      m = S.mutex ();
      readable = S.condition ();
      writable = S.condition ();
      readers = 0;
      writer = false;
    }

  let read_lock rw =
    S.with_lock rw.m (fun () ->
        while rw.writer do
          S.wait rw.m rw.readable
        done;
        rw.readers <- rw.readers + 1)

  let read_unlock rw =
    S.with_lock rw.m (fun () ->
        rw.readers <- rw.readers - 1;
        (* Only one writer can proceed: Signal suffices. *)
        if rw.readers = 0 then S.signal rw.writable)

  let write_lock rw =
    S.with_lock rw.m (fun () ->
        while rw.writer || rw.readers > 0 do
          S.wait rw.m rw.writable
        done;
        rw.writer <- true)

  let write_unlock rw =
    S.with_lock rw.m (fun () ->
        rw.writer <- false;
        (* All readers may resume: Broadcast is necessary.  A Signal here
           would wake one reader and leave the rest parked. *)
        S.broadcast rw.readable;
        S.signal rw.writable)
end

let run_on_sim ~broadcast_readers ~seed =
  (* Returns (max concurrent readers seen, invariant violations, verdict). *)
  let max_readers = ref 0 in
  let violations = ref 0 in
  let report =
    Taos_threads.Api.run ~seed (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let module RW = Rw_lock (S) in
        let rw = RW.create () in
        let active_readers = ref 0 and active_writers = ref 0 in
        let reader () =
          for _ = 1 to 3 do
            RW.read_lock rw;
            incr active_readers;
            if !active_writers > 0 then incr violations;
            if !active_readers > !max_readers then
              max_readers := !active_readers;
            Firefly.Machine.Ops.tick 5;
            decr active_readers;
            RW.read_unlock rw
          done
        in
        let writer () =
          for _ = 1 to 3 do
            RW.write_lock rw;
            incr active_writers;
            if !active_readers > 0 || !active_writers > 1 then
              incr violations;
            Firefly.Machine.Ops.tick 5;
            decr active_writers;
            (if broadcast_readers then RW.write_unlock rw
             else
               (* the buggy variant: Signal instead of Broadcast *)
               S.with_lock rw.m (fun () ->
                   rw.RW.writer <- false;
                   S.signal rw.RW.readable;
                   S.signal rw.RW.writable))
          done
        in
        let rs = List.init 4 (fun _ -> S.fork reader) in
        let ws = List.init 2 (fun _ -> S.fork writer) in
        List.iter S.join (rs @ ws))
  in
  (!max_readers, !violations, report.Firefly.Interleave.verdict)

let () =
  let stuck = ref 0 and max_r = ref 0 in
  for seed = 0 to 99 do
    let m, v, verdict = run_on_sim ~broadcast_readers:true ~seed in
    if v > 0 then Printf.printf "seed %d: %d invariant violations!\n" seed v;
    if m > !max_r then max_r := m;
    match verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> incr stuck
  done;
  Printf.printf
    "with Broadcast:  100 runs, 0 exclusion violations, %d stuck, up to %d \
     concurrent readers\n"
    !stuck !max_r;
  let stuck = ref 0 in
  for seed = 0 to 99 do
    let _, _, verdict = run_on_sim ~broadcast_readers:false ~seed in
    match verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> incr stuck
  done;
  Printf.printf
    "with Signal:     100 runs, %d stuck (readers left parked — the bug \
     the paper warns about)\n"
    !stuck
